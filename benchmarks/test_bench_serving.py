"""Bench SERVE: batched query planning vs the per-query pool path.

The serving subsystem's claim: a batch of arbitrary-rectangle distance
queries is answered with a handful of vectorized estimator calls (one
per query group) instead of one estimator invocation per query, plus a
single fancy-indexing gather per (group, stream) instead of per-query
scalar map lookups.  The assertions pin both the >= 5x collapse in
estimator invocations on a 1000+ mixed-query workload and answer parity
with the scalar path; the benchmark table shows the wall-clock side on
the same workload, plus the end-to-end client/server round trip over
localhost (stdlib sockets, JSON-lines framing).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.estimators import estimate_distance_values
from repro.serve import Client, RectQuery, SketchEngine, SketchServer

P = 1.0
K = 64
N_QUERIES = 1200
TABLE_SHAPE = (128, 256)

TRAJECTORY_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"


@pytest.fixture(scope="module")
def engine():
    engine = SketchEngine(p=P, k=K, seed=13)
    engine.register_array(
        "bench", np.random.default_rng(17).normal(size=TABLE_SHAPE)
    )
    return engine


@pytest.fixture(scope="module", autouse=True)
def bench_trajectory(engine):
    """Append one run entry to ``BENCH_serving.json`` after the module.

    The trajectory file accumulates one JSON entry per benchmark run —
    workload shape, batched-planner cost counters, and per-op latency —
    so serving-path regressions show up as a trend, not a one-off
    number.
    """
    started = time.time()
    yield
    snapshot = engine.stats_snapshot()
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(started)),
        "wall_seconds": round(time.time() - started, 3),
        "workload": {"queries": N_QUERIES, "table_shape": list(TABLE_SHAPE),
                     "p": P, "k": K},
        "queries_answered": snapshot["queries"],
        "planner": snapshot["planner"],
        "latency_seconds": {
            "count": snapshot["latency_seconds"]["count"],
            "mean": snapshot["latency_seconds"]["mean"],
            "max": snapshot["latency_seconds"]["max"],
        },
        "tables": {
            name: {"maps_built": table["maps_built"],
                   "map_hits": table["map_hits"],
                   "map_bytes": table["map_bytes"]}
            for name, table in snapshot["tables"].items()
        },
    }
    try:
        history = json.loads(TRAJECTORY_PATH.read_text())
        if not isinstance(history, list):
            history = []
    except (OSError, ValueError):
        history = []
    history.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture(scope="module")
def mixed_queries(engine):
    """A >= 1000-query workload mixing sizes and all three strategies."""
    rng = np.random.default_rng(23)
    shape = engine.pool("bench").data.shape
    queries = []
    for index in range(N_QUERIES):
        mode = index % 3
        if mode == 0:  # dyadic -> grid
            height = 1 << int(rng.integers(3, 6))
            width = 1 << int(rng.integers(3, 7))
            strategy = "auto"
        elif mode == 1:  # ragged -> compound
            height = int(rng.integers(9, 48))
            width = int(rng.integers(9, 48))
            strategy = "auto"
        else:  # multiples of the pooled unit -> exact disjoint
            height = 8 * int(rng.integers(1, 7))
            width = 8 * int(rng.integers(1, 7))
            strategy = "disjoint"
        row_a = int(rng.integers(0, shape[0] - height + 1))
        col_a = int(rng.integers(0, shape[1] - width + 1))
        row_b = int(rng.integers(0, shape[0] - height + 1))
        col_b = int(rng.integers(0, shape[1] - width + 1))
        queries.append(RectQuery(
            "bench", (row_a, col_a, height, width), (row_b, col_b, height, width),
            strategy,
        ))
    return queries


def scalar_answers(engine, queries):
    """The per-query baseline: one estimator invocation per query."""
    pool = engine.pool("bench")
    answers = []
    for query in queries:
        strategy = engine.planner.resolve_strategy(pool, query)
        if strategy == "compound":
            sketch_a = pool.sketch_for(query.a)
            sketch_b = pool.sketch_for(query.b)
        else:
            sketch_a = pool.disjoint_sketch_for(query.a)
            sketch_b = pool.disjoint_sketch_for(query.b)
        answers.append(
            estimate_distance_values(sketch_a.values - sketch_b.values, P)
        )
    return answers


def test_batched_planner_collapses_estimator_calls(engine, mixed_queries):
    """>= 1000 mixed queries, >= 5x fewer estimator invocations, same answers."""
    assert len(mixed_queries) >= 1000
    engine.stats.planner.reset()
    results = engine.query(mixed_queries)

    planner_calls = engine.stats.planner.estimator_calls
    baseline_calls = len(mixed_queries)  # scalar path: one call per query
    assert planner_calls * 5 <= baseline_calls, (
        f"batched planning used {planner_calls} estimator calls for "
        f"{baseline_calls} queries; expected at least a 5x collapse"
    )
    # and every strategy participated
    assert engine.stats.planner.grid_queries > 0
    assert engine.stats.planner.compound_queries > 0
    assert engine.stats.planner.disjoint_queries > 0

    expected = scalar_answers(engine, mixed_queries)
    got = [result.distance for result in results]
    assert got == expected  # bit-exact parity with the per-query path


def test_bench_batched_execution(benchmark, engine, mixed_queries):
    engine.query(mixed_queries[:50])  # warm the maps out of the timing

    def run():
        return engine.query(mixed_queries)

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == len(mixed_queries)


def test_bench_per_query_baseline(benchmark, engine, mixed_queries):
    engine.query(mixed_queries[:50])  # same warm maps as the batched bench

    def run():
        return scalar_answers(engine, mixed_queries)

    answers = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(answers) == len(mixed_queries)


def test_bench_span_overhead(benchmark, engine, mixed_queries):
    """Batched execution with tracing disabled — the span-overhead bound.

    Compare against ``test_bench_batched_execution`` (spans on): the
    instrumentation budget is <= 2% on this workload, since spans wrap
    stages (batch execution, map builds) rather than per-query work.
    """
    engine.query(mixed_queries[:50])  # warm the maps out of the timing
    pool = engine.pool("bench")
    engine.tracer.enabled = False
    pool.tracer.enabled = False
    try:
        def run():
            return engine.query(mixed_queries)

        results = benchmark.pedantic(run, rounds=3, iterations=1)
    finally:
        engine.tracer.enabled = True
        pool.tracer.enabled = True
    assert len(results) == len(mixed_queries)


def test_bench_client_server_round_trip(benchmark, engine, mixed_queries):
    """End-to-end over localhost: JSON framing + TCP + batched execution."""
    batch = mixed_queries[:200]
    engine.query(batch)  # warm
    with SketchServer(engine) as server:
        server.start()
        with Client(*server.address, timeout=60.0) as client:
            assert client.ping()

            def run():
                return client.query(batch)

            remote = benchmark.pedantic(run, rounds=3, iterations=1)
    local = engine.query(batch)
    assert [r.distance for r in remote] == [r.distance for r in local]
