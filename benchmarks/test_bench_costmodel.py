"""Bench TAB-costmodel: per-comparison cost of the distance routines.

Microbenchmarks a single distance call per oracle mode — the paper's
"cost of a comparison" unit — and pins the element-touch accounting the
wall-clock figures are built on.
"""

from __future__ import annotations

import pytest

from repro.core.distance import ExactLpOracle, PrecomputedSketchOracle
from repro.core.generator import SketchGenerator
from repro.experiments.costmodel import (
    exact_comparison_cost,
    sketch_comparison_cost,
)

K = 64


@pytest.fixture(scope="module")
def oracles(call_tiles):
    _grid, tiles = call_tiles
    gen = SketchGenerator(p=1.0, k=K, seed=0)
    exact = ExactLpOracle(tiles, p=1.0)
    sketched = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
    return exact, sketched


def test_exact_single_comparison(benchmark, oracles, call_tiles):
    exact, _ = oracles
    benchmark(exact.distance, 0, 1)
    _grid, tiles = call_tiles
    per = exact.stats.elements_touched / exact.stats.comparisons
    assert per == exact_comparison_cost(tiles[0].size)


def test_sketch_single_comparison(benchmark, oracles):
    _, sketched = oracles
    benchmark(sketched.distance, 0, 1)
    per = sketched.stats.elements_touched / sketched.stats.comparisons
    assert per == sketch_comparison_cost(K)


def test_sketch_touches_fewer_elements(benchmark, oracles, call_tiles):
    """The whole point, in one assertion: a sketched comparison touches
    a tile-size-independent number of elements."""
    exact, sketched = oracles
    _grid, tiles = call_tiles

    def both():
        exact.stats.reset()
        sketched.stats.reset()
        exact.distance(2, 3)
        sketched.distance(2, 3)
        return exact.stats.elements_touched, sketched.stats.elements_touched

    exact_elements, sketch_elements = benchmark.pedantic(both, rounds=3, iterations=1)
    assert sketch_elements * 10 <= exact_elements
    assert sketch_elements == 2 * K
