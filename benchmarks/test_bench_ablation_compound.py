"""Bench ABL-compound: Definition-4 compound sketches vs alternatives.

Three ways to answer an arbitrary-rectangle sketch query from a dyadic
pool, benched and accuracy-banded:

* **compound** (the paper): O(1) map lookups, estimates inflated into
  the Theorem-5 band [1-eps, 4(1+eps)];
* **disjoint** (our extension): O(log^2) lookups, no inflation;
* **direct**: sketch the raw tile from scratch — exact-quality sketch,
  but touches all k*M elements (what the pool exists to avoid).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import estimate_distance
from repro.core.generator import SketchGenerator
from repro.core.norms import lp_distance
from repro.core.pool import SketchPool
from repro.table.tiles import TileSpec

K = 256
SPEC_A = TileSpec(3, 5, 12, 20)  # 12 = 8+4, 20 = 16+4: non-dyadic dims
SPEC_B = TileSpec(40, 33, 12, 20)


@pytest.fixture(scope="module")
def pool():
    data = np.random.default_rng(0).normal(size=(64, 64))
    pool = SketchPool(data, SketchGenerator(p=1.0, k=K, seed=1), min_exponent=2)
    # Warm every map the queries need, so benches measure queries only.
    pool.sketch_for(SPEC_A)
    pool.disjoint_sketch_for(SPEC_A)
    return data, pool


def test_compound_query(benchmark, pool):
    _data, p = pool
    benchmark(p.sketch_for, SPEC_A)


def test_disjoint_query(benchmark, pool):
    _data, p = pool
    benchmark(p.disjoint_sketch_for, SPEC_A)


def test_direct_sketch(benchmark, pool):
    data, p = pool
    tile = data[SPEC_A.slices]
    benchmark(p.generator.sketch, tile)


def test_accuracy_bands(benchmark, pool):
    """Compound lands in the Theorem-5 band; disjoint tracks the truth."""
    data, p = pool
    exact = lp_distance(data[SPEC_A.slices], data[SPEC_B.slices], 1.0)

    def estimates():
        compound = estimate_distance(p.sketch_for(SPEC_A), p.sketch_for(SPEC_B))
        disjoint = estimate_distance(
            p.disjoint_sketch_for(SPEC_A), p.disjoint_sketch_for(SPEC_B)
        )
        return compound, disjoint

    compound, disjoint = benchmark.pedantic(estimates, rounds=1, iterations=1)
    benchmark.extra_info["compound_ratio"] = compound / exact
    benchmark.extra_info["disjoint_ratio"] = disjoint / exact
    assert 0.7 * exact < compound < 4 * 1.3 * exact
    assert 0.75 * exact < disjoint < 1.25 * exact
    # The compound estimate pays an inflation the disjoint one does not.
    assert abs(disjoint - exact) < abs(compound - exact)
