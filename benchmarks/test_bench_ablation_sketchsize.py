"""Bench ABL-sketchsize: the accuracy/time knob.

The paper: "the accuracy of sketching can be improved by using larger
sized sketches" and "this time benefit could be made even more
pronounced by reducing the size of the sketches at the expense of a
loss in accuracy".  This ablation measures both sides: comparison time
grows with k, mean relative error shrinks ~ 1/sqrt(k).  It also covers
the p=2 estimator choice (Euclidean vs median) the paper remarks on in
Section 4.4.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import estimate_distance
from repro.core.generator import SketchGenerator
from repro.core.norms import lp_distance

SIZES = (8, 32, 128, 512)


@pytest.fixture(scope="module")
def tile_pair():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(48, 48))
    return x, x + rng.normal(size=(48, 48))


def _mean_rel_error(p, k, tile_pair, method="auto", n_draws=15):
    x, y = tile_pair
    exact = lp_distance(x, y, p)
    errors = []
    for seed in range(n_draws):
        gen = SketchGenerator(p=p, k=k, seed=seed)
        approx = estimate_distance(gen.sketch(x), gen.sketch(y), method=method)
        errors.append(abs(approx - exact) / exact)
    return float(np.mean(errors))


@pytest.mark.parametrize("k", SIZES)
def test_comparison_time_vs_k(benchmark, tile_pair, k):
    """Time of one sketched comparison as k grows."""
    x, y = tile_pair
    gen = SketchGenerator(p=1.0, k=k, seed=0)
    sx, sy = gen.sketch(x), gen.sketch(y)
    benchmark(estimate_distance, sx, sy)


@pytest.mark.parametrize("k", SIZES)
def test_accuracy_vs_k(benchmark, tile_pair, k):
    """Mean relative error at each k (recorded as extra_info)."""
    error = benchmark.pedantic(
        _mean_rel_error, args=(1.0, k, tile_pair), rounds=1, iterations=1
    )
    benchmark.extra_info["mean_rel_error"] = error
    if k == SIZES[-1]:
        assert error < 0.1


def test_error_shrinks_with_k(benchmark, tile_pair):
    """Large sketches are several times more accurate than tiny ones."""

    def spread():
        return _mean_rel_error(1.0, 8, tile_pair), _mean_rel_error(1.0, 512, tile_pair)

    small_k_error, large_k_error = benchmark.pedantic(spread, rounds=1, iterations=1)
    assert large_k_error * 3 < small_k_error


def test_p2_l2_estimator_faster_than_median(benchmark):
    """Section 4.4: for p=2 the Euclidean estimator beats the median —
    measured on the vectorised kernel the clustering oracles run (a
    batch of sketch differences), where the gap actually matters."""
    import time

    rng = np.random.default_rng(0)
    diffs = rng.normal(size=(2000, 512))

    def l2_kernel():
        return np.sqrt(np.sum(diffs * diffs, axis=1) / (2.0 * 512))

    def median_kernel():
        return np.median(np.abs(diffs), axis=1)

    def timed(kernel, repeats=20):
        start = time.perf_counter()
        for _ in range(repeats):
            kernel()
        return time.perf_counter() - start

    ratio = benchmark.pedantic(
        lambda: timed(median_kernel) / timed(l2_kernel), rounds=3, iterations=1
    )
    # The median path partitions every row; the l2 path is one pass.
    assert ratio > 1.5
