"""Shared fixtures for the benchmark suite.

Data is generated once per session at "quick" scale; every benchmark
target mirrors a table/figure of the paper (see DESIGN.md's
per-experiment index) or an ablation of a design choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.callvolume import CallVolumeConfig, generate_call_volume
from repro.data.synthetic import SixRegionConfig, generate_six_region, tile_truth_labels
from repro.table.tiles import TileGrid


@pytest.fixture(scope="session")
def call_table():
    """Six days of synthetic call volume, 128 stations."""
    return generate_call_volume(CallVolumeConfig(n_stations=128, n_days=6, seed=0))


@pytest.fixture(scope="session")
def call_tiles(call_table):
    """Day-by-16-stations tiles of the call table (the Figure 3 unit)."""
    grid = call_table.grid((16, 144))
    tiles = [call_table.values[spec.slices] for spec in grid]
    return grid, tiles


@pytest.fixture(scope="session")
def six_region():
    """The planted-clustering table, its grid, and tile ground truth."""
    table, row_regions = generate_six_region(SixRegionConfig(n_rows=256, n_cols=256))
    grid = TileGrid(table.shape, (16, 16))
    truth = tile_truth_labels(grid, row_regions)
    return table, grid, truth


@pytest.fixture(scope="session")
def random_pair_positions(call_table):
    """Shared random window positions for the Figure 2 benches."""

    def make(side: int, count: int, seed: int = 1):
        rng = np.random.default_rng(seed)
        shape = call_table.shape
        rows = rng.integers(0, shape[0] - side + 1, size=(2, count))
        cols = rng.integers(0, shape[1] - side + 1, size=(2, count))
        return rows, cols

    return make
