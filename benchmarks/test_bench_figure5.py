"""Bench FIG5: the case-study clustering behind the ASCII picture.

Benches the sketch-and-cluster pipeline for one day at p=2.0 and
p=0.25, and asserts the qualitative contrast the paper draws: lower p
pushes more of the map into the default (largest) cluster, leaving only
the strongly distinct regions marked.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.kmeans import KMeans
from repro.core.distance import PrecomputedSketchOracle
from repro.core.generator import SketchGenerator
from repro.core.pipeline import sketch_grid
from repro.data.callvolume import CallVolumeConfig, generate_call_volume

K = 96
N_CLUSTERS = 8


@pytest.fixture(scope="module")
def one_day():
    table = generate_call_volume(CallVolumeConfig(n_stations=240, n_days=1, seed=0))
    grid = table.grid((8, 6))  # 8-station groups by hour
    return table, grid


def _cluster_at(p, one_day):
    table, grid = one_day
    gen = SketchGenerator(p=p, k=K, seed=0)
    oracle = PrecomputedSketchOracle(sketch_grid(table.values, grid, gen), p)
    return KMeans(N_CLUSTERS, max_iter=40, seed=0).fit(oracle)


@pytest.mark.parametrize("p", [2.0, 0.25])
def test_case_study_clustering(benchmark, one_day, p):
    result = benchmark.pedantic(_cluster_at, args=(p, one_day), rounds=2, iterations=1)
    assert result.n_clusters == N_CLUSTERS


def test_low_p_emphasises_fewer_regions(benchmark, one_day):
    """At p=0.25 the dominant cluster swallows more of the map than at
    p=2.0 — the paper's 'only a few regions remain distinct'."""

    def dominant_shares():
        shares = {}
        for p in (2.0, 0.25):
            labels = _cluster_at(p, one_day).labels
            shares[p] = np.bincount(labels).max() / labels.size
        return shares

    shares = benchmark.pedantic(dominant_shares, rounds=1, iterations=1)
    assert shares[0.25] > shares[2.0]
