"""Bench EXT-mining: the sketch-powered mining applications.

Benches the mining layer built on the paper's machinery — pairwise
matrices, similarity joins, VP-tree queries, outlier scoring — each at
quick scale with its headline guarantee asserted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.base import pairwise_distance_matrix
from repro.core.distance import ExactLpOracle, PrecomputedSketchOracle
from repro.core.generator import SketchGenerator
from repro.mining import VPTree, nearest_neighbors, sketch_similarity_join, top_outliers

K = 64


@pytest.fixture(scope="module")
def mining_tiles(call_tiles):
    _grid, tiles = call_tiles
    return tiles


@pytest.fixture(scope="module")
def sketched_oracle(mining_tiles):
    gen = SketchGenerator(p=1.0, k=K, seed=0)
    return PrecomputedSketchOracle.from_sketches(gen.sketch_many(mining_tiles))


def test_pairwise_matrix_sketched(benchmark, sketched_oracle):
    matrix = benchmark(sketched_oracle.pairwise_matrix)
    assert matrix.shape == (sketched_oracle.n_items,) * 2
    np.testing.assert_allclose(matrix, matrix.T)


def test_pairwise_matrix_exact(benchmark, mining_tiles):
    oracle = ExactLpOracle(mining_tiles, p=1.0)
    matrix = benchmark(oracle.pairwise_matrix)
    assert np.all(np.diag(matrix) == 0.0)


def test_fast_path_dispatch(benchmark, sketched_oracle):
    """pairwise_distance_matrix must route to the vectorised method."""
    before = sketched_oracle.stats.comparisons
    matrix = benchmark.pedantic(
        pairwise_distance_matrix, args=(sketched_oracle,), rounds=2, iterations=1
    )
    assert matrix.shape[0] == sketched_oracle.n_items
    n = sketched_oracle.n_items
    assert sketched_oracle.stats.comparisons >= before + n * (n - 1) // 2


def test_similarity_join(benchmark, mining_tiles):
    half = len(mining_tiles) // 2
    gen = SketchGenerator(p=1.0, k=K, seed=1)
    pairs = benchmark.pedantic(
        sketch_similarity_join,
        args=(mining_tiles[:half], mining_tiles[half:], gen),
        kwargs={"n_pairs": 5},
        rounds=2,
        iterations=1,
    )
    assert len(pairs) == 5
    distances = [pair.distance for pair in pairs]
    assert distances == sorted(distances)


def test_vptree_query(benchmark, sketched_oracle):
    tree = VPTree(sketched_oracle, leaf_size=4, slack=0.4, seed=0)
    hits = benchmark(tree.nearest, 0, 3)
    scan = {i for i, _ in nearest_neighbors(sketched_oracle, 0, 3)}
    assert len({i for i, _ in hits} & scan) >= 2


def test_outlier_scoring(benchmark, mining_tiles):
    tiles = list(mining_tiles)
    tiles.append(tiles[0] + 1e5)  # plant an anomaly
    gen = SketchGenerator(p=1.0, k=K, seed=2)
    oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
    top = benchmark.pedantic(
        top_outliers, args=(oracle, 1), rounds=2, iterations=1
    )
    assert top[0][0] == len(tiles) - 1
