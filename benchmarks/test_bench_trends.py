"""Bench EXT-trends: time-series trend mining via sketches.

Covers the paper's [13] layer: the FFT sliding-window sketch pass vs
sketching each window directly, and the end-to-end trend queries with
their correctness pinned (the relaxed period of a diurnal series is a
day).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generator import SketchGenerator
from repro.mining import relaxed_period, representative_trend, sliding_window_sketches

WINDOW = 64
K = 32


@pytest.fixture(scope="module")
def series(call_table):
    """The busiest station's full series from the shared call table."""
    values = call_table.values
    return values[int(np.argmax(values.sum(axis=1)))]


def test_sliding_sketches_fft(benchmark, series):
    gen = SketchGenerator(p=1.0, k=K, seed=0)
    benchmark.pedantic(
        sliding_window_sketches, args=(series, WINDOW, gen), rounds=3, iterations=1
    )


def test_sliding_sketches_direct(benchmark, series):
    """The naive per-window alternative the FFT pass replaces."""
    gen = SketchGenerator(p=1.0, k=K, seed=0)

    def direct():
        windows = [
            series[i : i + WINDOW] for i in range(series.size - WINDOW + 1)
        ]
        return np.stack([s.values for s in gen.sketch_many(windows)])

    matrix = benchmark.pedantic(direct, rounds=2, iterations=1)

    fft_matrix = sliding_window_sketches(series, WINDOW, gen)
    np.testing.assert_allclose(matrix, fft_matrix, atol=1e-6)


def test_representative_trend_query(benchmark, series):
    best, costs = benchmark.pedantic(
        representative_trend,
        args=(series, 144),
        kwargs={"p": 1.0, "k": 64},
        rounds=2,
        iterations=1,
    )
    assert 0 <= best < costs.size


def test_relaxed_period_finds_the_day(benchmark, series):
    best, _scores = benchmark.pedantic(
        relaxed_period,
        args=(series, [72, 108, 144]),
        kwargs={"p": 1.0, "k": 64},
        rounds=1,
        iterations=1,
    )
    assert best == 144  # one day of 10-minute intervals
