"""Bench EXT-streaming: turnstile sketch maintenance throughput.

Not a paper figure — an extension in the direct lineage of the paper's
[12] (stable sketches for data streams).  Benches the per-update and
bulk-ingest costs and pins the core guarantees: permutation invariance
and exact mergeability.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.norms import lp_distance
from repro.stream import StreamingSketch

K = 64
SHAPE = (64, 144)


@pytest.fixture(scope="module")
def update_batch():
    rng = np.random.default_rng(0)
    count = 200
    rows = rng.integers(0, SHAPE[0], size=count)
    cols = rng.integers(0, SHAPE[1], size=count)
    deltas = rng.normal(size=count) * 10
    return rows, cols, deltas


def test_single_update(benchmark):
    sketch = StreamingSketch(1.0, K, SHAPE, seed=1)
    benchmark(sketch.update, 10, 20, 1.5)


def test_update_batch(benchmark, update_batch):
    rows, cols, deltas = update_batch

    def ingest():
        sketch = StreamingSketch(1.0, K, SHAPE, seed=1)
        sketch.update_many(rows, cols, deltas)
        return sketch

    benchmark.pedantic(ingest, rounds=3, iterations=1)


def test_bulk_ingest_from_array(benchmark):
    array = np.random.default_rng(2).poisson(5.0, size=(16, 36)).astype(float)
    benchmark.pedantic(
        StreamingSketch.from_array,
        args=(array,),
        kwargs={"p": 1.0, "k": K, "seed": 3},
        rounds=3,
        iterations=1,
    )


def test_distance_query(benchmark):
    rng = np.random.default_rng(4)
    x = rng.normal(size=(16, 16))
    y = x + rng.normal(size=(16, 16))
    a = StreamingSketch.from_array(x, p=1.0, k=256, seed=5)
    b = StreamingSketch.from_array(y, p=1.0, k=256, seed=5)

    estimate = benchmark(a.estimate_distance, b)

    exact = lp_distance(x, y, 1.0)
    assert abs(estimate - exact) / exact < 0.35


def test_merge_is_exact(benchmark):
    rng = np.random.default_rng(6)
    x = rng.normal(size=(12, 12))
    y = rng.normal(size=(12, 12))
    a = StreamingSketch.from_array(x, p=1.0, k=K, seed=7)
    b = StreamingSketch.from_array(y, p=1.0, k=K, seed=7)

    merged = benchmark(a.merged, b)

    direct = StreamingSketch.from_array(x + y, p=1.0, k=K, seed=7)
    np.testing.assert_allclose(merged.values, direct.values, atol=1e-8)
