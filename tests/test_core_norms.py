"""Tests for repro.core.norms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import lp_distance, lp_norm
from repro.errors import ParameterError, ShapeError


class TestLpNorm:
    def test_l1(self):
        assert lp_norm([1, -2, 3], 1.0) == 6.0

    def test_l2(self):
        assert lp_norm([3, 4], 2.0) == 5.0

    def test_fractional(self):
        # (1^0.5 + 4^0.5)^(1/0.5) = (1 + 2)^2 = 9
        assert abs(lp_norm([1.0, 4.0], 0.5) - 9.0) < 1e-12

    def test_matrix_input_flattens(self):
        assert lp_norm([[3, 0], [0, 4]], 2.0) == 5.0

    def test_zero_vector(self):
        assert lp_norm(np.zeros(5), 0.7) == 0.0

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_p_rejected(self, bad):
        with pytest.raises(ParameterError):
            lp_norm([1.0], bad)

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            lp_norm(np.array([]), 1.0)

    @given(
        x=hnp.arrays(
            np.float64,
            st.integers(min_value=1, max_value=30),
            elements=st.floats(min_value=-100, max_value=100),
        ),
        p=st.floats(min_value=0.2, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_homogeneity(self, x, p):
        """||c x||_p == |c| ||x||_p."""
        scale = 3.5
        assert lp_norm(scale * x, p) == pytest.approx(scale * lp_norm(x, p), abs=1e-6, rel=1e-9)

    @given(
        p=st.floats(min_value=1.0, max_value=2.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality_for_p_geq_1(self, p, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=12)
        y = rng.normal(size=12)
        assert lp_norm(x + y, p) <= lp_norm(x, p) + lp_norm(y, p) + 1e-9


class TestLpDistance:
    def test_symmetry(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=8), rng.normal(size=8)
        assert lp_distance(x, y, 1.3) == pytest.approx(lp_distance(y, x, 1.3))

    def test_identity(self):
        x = np.random.default_rng(1).normal(size=(4, 4))
        assert lp_distance(x, x, 0.5) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            lp_distance(np.zeros(3), np.zeros(4), 1.0)

    def test_matches_norm_of_difference(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=(3, 5)), rng.normal(size=(3, 5))
        assert lp_distance(x, y, 0.8) == pytest.approx(lp_norm(x - y, 0.8))

    def test_small_p_approaches_hamming(self):
        """For tiny p, sum |d|^p counts differing entries."""
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([1.0, 5.0, 3.0, 9.0])  # 2 entries differ
        p = 0.01
        raw = lp_distance(x, y, p) ** p  # undo the outer 1/p power
        assert abs(raw - 2.0) < 0.1
