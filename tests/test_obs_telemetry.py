"""Unit tests for the telemetry plane: history, watermarks, SLOs.

These are the clock-injected unit tests; the live churn/drill tests
(sampler thread racing registry writers, the 18-day turnover drill,
the wire-op integration) live in ``test_telemetry_churn.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import (
    MetricsRegistry,
    merge_histogram_snapshots,
    quantile_from_bucket_counts,
)
from repro.obs.telemetry import (
    DEFAULT_SLOS,
    SLO,
    IngestWatermarks,
    MetricHistory,
    SLOMonitor,
    Telemetry,
    register_build_info,
    series_key,
)


class FakeClock:
    """A hand-cranked monotonic clock for deterministic windows."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


def sample_value(registry, name, **labels):
    """The value of one labelled sample out of a registry snapshot."""
    for sample in registry.snapshot()[name]["samples"]:
        if sample["labels"] == labels:
            return sample["value"]
    raise AssertionError(f"no sample {name}{labels}")


class TestSeriesKey:
    def test_bare_name_without_labels(self):
        assert series_key("requests_total", {}) == "requests_total"

    def test_labels_sorted_for_stability(self):
        key = series_key("x", {"b": 2, "a": 1})
        assert key == "x{a=1,b=2}"
        assert key == series_key("x", {"a": 1, "b": 2})


class TestQuantileFromBucketCounts:
    EDGES = (0.1, 1.0, 10.0)

    def test_empty_counts_give_zero(self):
        assert quantile_from_bucket_counts(self.EDGES, [0, 0, 0, 0], 0.5, 10.0) == 0.0

    def test_overflow_bucket_reports_maximum(self):
        value = quantile_from_bucket_counts(self.EDGES, [0, 0, 0, 5], 0.99, 42.0)
        assert value == 42.0

    def test_interpolates_inside_a_bucket(self):
        value = quantile_from_bucket_counts(self.EDGES, [0, 10, 0, 0], 0.5, 1.0)
        assert 0.1 <= value <= 1.0

    def test_quantile_outside_unit_interval_rejected(self):
        with pytest.raises(ParameterError):
            quantile_from_bucket_counts(self.EDGES, [1, 0, 0, 0], 1.5, 1.0)


class TestMergeHistogramSnapshots:
    def snap(self, counts, count=None, total=1.0, maximum=1.0, edges=(0.1, 1.0)):
        return {
            "edges": list(edges),
            "counts": list(counts),
            "count": sum(counts) if count is None else count,
            "total": total,
            "max": maximum,
        }

    def test_sums_counts_and_totals(self):
        merged = merge_histogram_snapshots(
            [self.snap([1, 2, 3], total=2.0, maximum=0.5),
             self.snap([4, 0, 1], total=3.0, maximum=9.0)]
        )
        assert merged["counts"] == [5, 2, 4]
        assert merged["count"] == 11
        assert merged["total"] == pytest.approx(5.0)
        assert merged["max"] == 9.0
        assert set(merged["quantiles"]) >= {"p50", "p99"}

    def test_empty_merge_is_zeroed_not_a_crash(self):
        merged = merge_histogram_snapshots([])
        assert merged["count"] == 0
        assert merged["quantiles"]["p99"] == 0.0

    def test_mismatched_edges_raise_typed(self):
        with pytest.raises(ParameterError):
            merge_histogram_snapshots(
                [self.snap([1, 0, 0]), self.snap([1, 0, 0], edges=(0.5, 5.0))]
            )

    def test_non_dicts_and_edgeless_snapshots_skipped(self):
        merged = merge_histogram_snapshots(
            [None, {"count": 3}, self.snap([2, 0, 0])]
        )
        assert merged["count"] == 2


class TestMetricHistory:
    def test_capacity_floor(self):
        with pytest.raises(ParameterError):
            MetricHistory(MetricsRegistry(), capacity=1)

    def test_ring_wraparound_keeps_only_capacity_frames(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        clock = FakeClock()
        history = MetricHistory(registry, capacity=3, clock=clock)
        for step in range(7):
            counter.inc()
            clock.advance(1.0)
            history.sample()
        assert len(history) == 3
        frames = history.frames()
        # Oldest retained frame is the fifth sample: counters 5, 6, 7.
        assert [f["counters"]["hits_total"] for f in frames] == [5, 6, 7]
        assert history.latest()["counters"]["hits_total"] == 7

    def test_family_rate_sums_labelled_series(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", op="query")
        b = registry.counter("requests_total", op="update")
        clock = FakeClock()
        history = MetricHistory(registry, capacity=8, clock=clock)
        history.sample()
        a.inc(10)
        b.inc(20)
        clock.advance(10.0)
        history.sample()
        assert history.family_rate("requests_total", 60.0) == pytest.approx(3.0)
        assert history.family_rate("no_such_family", 60.0) is None

    def test_counter_reset_clamps_to_zero_rate(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        clock = FakeClock()
        history = MetricHistory(registry, capacity=8, clock=clock)
        counter.inc(100)
        history.sample()
        counter.reset()
        clock.advance(5.0)
        history.sample()
        assert history.family_rate("hits_total", 60.0) == 0.0

    def test_window_picks_frame_at_least_window_old(self):
        registry = MetricsRegistry()
        registry.counter("hits_total")
        clock = FakeClock()
        history = MetricHistory(registry, capacity=16, clock=clock)
        for _ in range(6):
            history.sample()
            clock.advance(10.0)
        old, new = history.window(25.0)
        assert new["t"] - old["t"] >= 25.0
        # Longer than history: falls back to the oldest frame.
        old, new = history.window(1e9)
        assert old is history.frames()[0] or old == history.frames()[0]

    def test_windowed_quantile_uses_bucket_deltas(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", edges=(0.01, 0.1, 1.0))
        clock = FakeClock()
        history = MetricHistory(registry, capacity=8, clock=clock)
        for _ in range(50):
            hist.observe(5.0)  # old traffic: all overflow
        history.sample()
        for _ in range(50):
            hist.observe(0.05)  # windowed traffic: second bucket
        clock.advance(10.0)
        history.sample()
        key = "latency_seconds"
        p99 = history.windowed_quantile(key, 0.99, 60.0)
        # Only the new observations are in the window, so the old 5 s
        # overflow traffic must not drag the quantile up.
        assert p99 is not None and p99 <= 0.1
        assert history.windowed_quantile("nope", 0.99, 60.0) is None

    def test_persists_self_contained_json_lines(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc(3)
        registry.histogram("lat", edges=(1.0,)).observe(0.5)
        path = tmp_path / "frames.jsonl"
        history = MetricHistory(registry, capacity=4, persist_path=path)
        history.sample()
        history.sample()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["counters"]["hits_total"] == 3
        assert record["edges"]["lat"] == [1.0]
        assert history.persist_errors == 0

    def test_persist_errors_counted_not_raised(self, tmp_path):
        registry = MetricsRegistry()
        history = MetricHistory(registry, capacity=4, persist_path=tmp_path)
        history.sample()  # opening a directory for append -> OSError
        assert history.persist_errors == 1

    def test_broken_callback_gauge_skipped(self):
        registry = MetricsRegistry()

        def explode():
            raise RuntimeError("sensor fell off")

        registry.gauge_function("doomed", explode)
        registry.counter("fine_total").inc()
        history = MetricHistory(registry, capacity=4)
        frame = history.sample()
        assert "doomed" not in frame["gauges"]
        assert frame["counters"]["fine_total"] == 1

    def test_rate_series_lengths_bounded_by_points(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        clock = FakeClock()
        history = MetricHistory(registry, capacity=32, clock=clock)
        for _ in range(10):
            counter.inc(2)
            clock.advance(1.0)
            history.sample()
        series = history.family_rate_series("hits_total", points=4)
        assert len(series) == 4
        assert all(rate == pytest.approx(2.0) for rate in series)


class TestIngestWatermarks:
    def test_apply_advances_watermark_and_gauges(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        marks = IngestWatermarks(registry, clock=clock, wall=lambda: 1000.0)
        marks.note_apply("calls", "day1", cells=9, seconds=0.01)
        clock.advance(7.0)
        snap = marks.snapshot()["calls"]
        assert snap["batch_id"] == "day1"
        assert snap["batches"] == 1
        assert snap["cells"] == 9
        assert snap["staleness_seconds"] == pytest.approx(7.0)
        assert sample_value(
            registry, "ingest_staleness_seconds", table="calls"
        ) == pytest.approx(7.0)
        assert sample_value(
            registry, "ingest_last_apply_timestamp_seconds", table="calls"
        ) == 1000.0

    def test_duplicates_do_not_move_the_watermark(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        marks = IngestWatermarks(registry, clock=clock)
        marks.note_apply("t", "b1", cells=4, seconds=0.1)
        clock.advance(30.0)
        marks.note_apply("t", "b1", duplicate=True)
        snap = marks.snapshot()["t"]
        assert snap["batch_id"] == "b1"
        assert snap["duplicates"] == 1
        assert snap["batches"] == 1
        # A replayed batch is not fresh data: still 30 s stale.
        assert snap["staleness_seconds"] == pytest.approx(30.0)

    def test_max_staleness_reports_the_worst_table(self):
        clock = FakeClock()
        marks = IngestWatermarks(MetricsRegistry(), clock=clock)
        assert marks.max_staleness() is None
        marks.note_apply("fresh", "a")
        clock.advance(5.0)
        marks.note_apply("fresh", "b")
        marks.note_apply("stale", "a")
        clock.advance(2.0)
        marks.note_apply("fresh", "c")
        assert marks.max_staleness() == pytest.approx(2.0)
        assert marks.staleness("never") is None


class TestSLO:
    def test_ratio_burn_scales_by_error_budget(self):
        slo = SLO("avail", "availability", target=0.99)
        assert slo.burn(0.02) == pytest.approx(2.0)
        assert slo.burn(None) is None

    def test_threshold_burn_is_observed_over_target(self):
        slo = SLO("lat", "latency_p99", target=0.25)
        assert slo.burn(0.5) == pytest.approx(2.0)

    def test_validation_is_typed(self):
        with pytest.raises(ParameterError):
            SLO("x", "no_such_objective", target=0.5)
        with pytest.raises(ParameterError):
            SLO("x", "availability", target=1.5)
        with pytest.raises(ParameterError):
            SLO("x", "latency_p99", target=-1.0)
        with pytest.raises(ParameterError):
            SLO("x", "latency_p99", target=0.25,
                window_seconds=10.0, short_window_seconds=60.0)
        with pytest.raises(ParameterError):
            SLO("x", "availability", target=0.99, clear_factor=0.0)

    def test_defaults_cover_all_objectives(self):
        assert sorted(slo.objective for slo in DEFAULT_SLOS) == [
            "availability", "latency_p99", "quality", "staleness",
        ]


class TestSLOMonitor:
    SLO_ = SLO(
        "lat", "latency_p99", target=0.1,
        window_seconds=300.0, short_window_seconds=60.0,
        burn_threshold=2.0, clear_factor=0.5,
    )

    def monitor(self, registry=None):
        return SLOMonitor([self.SLO_], registry=registry, wall=FakeClock(100.0))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ParameterError):
            SLOMonitor([self.SLO_, self.SLO_])

    def test_fires_only_when_both_windows_burn(self):
        monitor = self.monitor()
        # Long window hot, short window cold: no alert (old incident).
        monitor.evaluate(lambda slo, w: 0.5 if w >= 300 else 0.05)
        assert monitor.firing() == []
        # Both windows hot: fires exactly once.
        fired = monitor.evaluate(lambda slo, w: 0.5)
        assert [a.slo for a in fired] == ["lat"]
        assert monitor.evaluate(lambda slo, w: 0.5) == []
        assert len(monitor.firing()) == 1

    def test_clears_with_hysteresis(self):
        monitor = self.monitor()
        monitor.evaluate(lambda slo, w: 0.5)  # burn 5.0 -> fires
        # Burn 1.5 is below the 2.0 threshold but above the 1.0 clear
        # line (threshold * clear_factor): the alert keeps firing.
        monitor.evaluate(lambda slo, w: 0.15)
        assert len(monitor.firing()) == 1
        # Burn 0.8 <= 1.0 on both windows: clears.
        monitor.evaluate(lambda slo, w: 0.08)
        assert monitor.firing() == []
        states = [event["state"] for event in monitor.history()]
        assert states == ["firing", "cleared"]

    def test_none_signal_holds_state(self):
        monitor = self.monitor()
        monitor.evaluate(lambda slo, w: 0.5)
        monitor.evaluate(lambda slo, w: None)  # idle window: no flap
        assert len(monitor.firing()) == 1

    def test_registry_gauges_track_state(self):
        registry = MetricsRegistry()
        monitor = self.monitor(registry=registry)
        assert sample_value(registry, "slo_alert_firing", slo="lat") == 0.0
        monitor.evaluate(lambda slo, w: 0.5)
        assert sample_value(registry, "slo_alert_firing", slo="lat") == 1.0
        assert sample_value(registry, "slo_burn_rate", slo="lat") == pytest.approx(5.0)

    def test_snapshot_is_json_safe(self):
        monitor = self.monitor()
        monitor.evaluate(lambda slo, w: 0.5)
        snap = monitor.snapshot()
        json.dumps(snap)
        assert snap["objectives"][0]["firing"] is True
        assert snap["firing"][0]["kind"] == "slo_burn_rate"


class TestBuildInfo:
    def test_build_info_and_uptime_registered(self):
        registry = MetricsRegistry()
        register_build_info(registry)
        register_build_info(registry)  # idempotent
        snap = registry.snapshot()
        sample = snap["repro_build_info"]["samples"][0]
        assert sample["value"] == 1.0
        assert set(sample["labels"]) == {"version", "python", "numpy"}
        assert snap["process_uptime_seconds"]["samples"][0]["value"] >= 0.0


class TestTelemetryFacade:
    def test_non_positive_interval_means_passive(self):
        telemetry = Telemetry(MetricsRegistry(), interval=0.0)
        assert telemetry.interval is None
        assert not telemetry.running

    def test_start_without_interval_rejected(self):
        with pytest.raises(ParameterError):
            Telemetry(MetricsRegistry()).start()

    def test_snapshot_samples_on_demand(self):
        registry = MetricsRegistry()
        registry.counter("server_queries_total").inc(5)
        telemetry = Telemetry(registry)
        snap = telemetry.snapshot()
        assert snap["samples"] >= 1
        assert snap["interval"] is None
        json.dumps(snap)
        assert set(snap["rates"]) == {
            "qps", "requests_per_s", "errors_per_s", "updates_per_s", "sheds_per_s",
        }

    def test_derived_gauges_published_from_history(self):
        registry = MetricsRegistry()
        queries = registry.counter("server_queries_total")
        latency = registry.histogram(
            "server_request_seconds",
            edges=(0.001, 0.01, 0.1, 1.0),
            op="all",
        )
        clock = FakeClock()
        telemetry = Telemetry(registry, clock=clock)
        telemetry.sample_once()
        queries.inc(100)
        for _ in range(20):
            latency.observe(0.05)
        clock.advance(10.0)
        telemetry.sample_once()
        assert sample_value(registry, "telemetry_qps") == pytest.approx(10.0)
        assert 0.01 <= sample_value(registry, "telemetry_p99_seconds") <= 0.1
        assert sample_value(registry, "telemetry_samples_total") == 2
