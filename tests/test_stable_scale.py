"""Tests for repro.stable.scale: the median scale factor B(p)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.stable import sample_symmetric_stable, stable_median_scale
from repro.stable.scale import median_absolute_deviation_factor


def test_b_of_one_is_exactly_one():
    # Cauchy: median |X| = tan(pi/4) = 1.
    assert stable_median_scale(1.0) == 1.0


def test_b_of_two_closed_form():
    # N(0, 2): median |X| = sqrt(2) * z_{0.75}.
    expected = math.sqrt(2.0) * 0.6744897501960817
    assert abs(stable_median_scale(2.0) - expected) < 1e-12


@pytest.mark.parametrize("p", [0.25, 0.5, 0.8, 1.3, 1.7])
def test_monte_carlo_b_matches_fresh_sample(p):
    """B(p) from the cached MC run must match an independent estimate.

    Sample-median noise is sd ~ 1/(2 f(m) sqrt(N)); at N=1e6 that is
    under 0.2% of B(p) for every tested p, so the 1% gate sits >= 5
    standard errors out — a fresh seed fails with probability < 1e-6.
    """
    rng = np.random.default_rng(987 + int(100 * p))
    draws = sample_symmetric_stable(p, 1_000_000, rng)
    fresh = float(np.median(np.abs(draws)))
    cached = stable_median_scale(p)
    assert abs(fresh - cached) / cached < 0.01


def test_b_is_deterministic():
    assert stable_median_scale(0.65) == stable_median_scale(0.65)


def test_b_monotone_behaviour_near_known_points():
    """B is continuous; sanity-check values bracket the p=1 anchor."""
    b_09 = stable_median_scale(0.9)
    b_11 = stable_median_scale(1.1)
    assert 0.5 < b_09 < 1.5
    assert 0.5 < b_11 < 1.5


@pytest.mark.parametrize("bad", [0.0, -0.5, 2.1, 3.0])
def test_out_of_domain_rejected(bad):
    with pytest.raises(ParameterError):
        stable_median_scale(bad)


def test_alias():
    assert median_absolute_deviation_factor(1.0) == stable_median_scale(1.0)
