"""Tests for the online estimate-quality monitor (shadow verification).

The chaos-style acceptance lives here: a monitor watching a healthy
engine stays silent, while one watching an engine whose sketch maps
were miscalibrated (``inject_scale_error``) raises a drift alert within
a bounded number of shadow checks.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.obs.export import lint_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import (
    DriftDetector,
    QualityAlert,
    QualityMonitor,
    theoretical_epsilon,
)
from repro.serve import SketchEngine
from repro.testing import inject_scale_error


def make_engine(sample_rate=1.0, seed=9, k=64):
    engine = SketchEngine(
        p=1.0, k=k, seed=seed,
        quality_sample_rate=sample_rate, quality_rng=random.Random(123),
    )
    engine.register_array(
        "t", np.random.default_rng(5).normal(size=(64, 64))
    )
    return engine


def mixed_queries(n):
    rng = np.random.default_rng(17)
    queries = []
    for index in range(n):
        row, col = int(rng.integers(0, 32)), int(rng.integers(0, 32))
        strategy = ("grid", "compound", "disjoint")[index % 3]
        if strategy == "grid":
            rect_a, rect_b = (0, 0, 8, 8), (16, 16, 8, 8)
        elif strategy == "compound":
            rect_a, rect_b = (row, col, 12, 12), (row, col + 16, 12, 12)
        else:
            rect_a, rect_b = (0, 0, 16, 16), (32, 16, 16, 16)
        queries.append(("t", rect_a, rect_b, strategy))
    return queries


class TestTheoreticalEpsilon:
    def test_matches_inverted_chernoff(self):
        k, delta = 64, 0.05
        assert theoretical_epsilon(k, delta) == pytest.approx(
            math.sqrt(2.0 * math.log(2.0 / delta) / k)
        )

    def test_decreases_with_k(self):
        assert theoretical_epsilon(256) < theoretical_epsilon(64)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            theoretical_epsilon(0)
        with pytest.raises(ParameterError):
            theoretical_epsilon(64, delta=0.0)
        with pytest.raises(ParameterError):
            theoretical_epsilon(64, delta=1.0)


class TestDriftDetector:
    def test_fires_after_threshold_over_net_violation(self):
        detector = DriftDetector(threshold=1.0, allowance=0.1)
        # net 0.4 per check -> crosses 1.0 on the third observation
        assert not detector.update(0.5)
        assert not detector.update(0.5)
        assert detector.update(0.5)
        assert detector.fired and detector.fired_at == 3

    def test_fires_only_once(self):
        detector = DriftDetector(threshold=0.5)
        assert detector.update(1.0)
        assert not detector.update(1.0)
        assert detector.fired_at == 1

    def test_in_band_checks_bleed_the_sum_down(self):
        detector = DriftDetector(threshold=10.0, allowance=0.25)
        detector.update(1.0)
        assert detector.sum == pytest.approx(0.75)
        detector.update(0.0)
        assert detector.sum == pytest.approx(0.5)
        detector.update(0.0)
        detector.update(0.0)
        assert detector.sum == 0.0  # clamped, never negative

    def test_reset(self):
        detector = DriftDetector(threshold=0.5)
        detector.update(1.0)
        detector.reset()
        assert not detector.fired
        assert detector.sum == 0.0 and detector.observations == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            DriftDetector(threshold=0.0)
        with pytest.raises(ParameterError):
            DriftDetector(allowance=-0.1)


class TestQualityAlert:
    def test_as_dict_round_trip(self):
        alert = QualityAlert("drift", "t", "grid", 1.25, 1.0, 34, 1.0, 64)
        payload = alert.as_dict()
        assert payload["kind"] == "drift"
        assert payload["table"] == "t" and payload["strategy"] == "grid"
        assert payload["observed"] == 1.25 and payload["bound"] == 1.0
        assert payload["checks"] == 34
        assert "after 34 checks" in repr(alert)


class TestQualityMonitorUnit:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            QualityMonitor(sample_rate=1.5)
        with pytest.raises(ParameterError):
            QualityMonitor(epsilon=0.0)
        with pytest.raises(ParameterError):
            QualityMonitor(quantile=1.0)

    def test_sampling_is_deterministic_with_injected_rng(self):
        draws_a = QualityMonitor(sample_rate=0.5, rng=random.Random(7))
        draws_b = QualityMonitor(sample_rate=0.5, rng=random.Random(7))
        schedule = [draws_a.should_sample() for _ in range(50)]
        assert schedule == [draws_b.should_sample() for _ in range(50)]
        assert any(schedule) and not all(schedule)

    def test_rate_edges_skip_the_rng(self):
        class Exploding(random.Random):
            def random(self):  # pragma: no cover - must never run
                raise AssertionError("rate 0/1 must not draw")

        off = QualityMonitor(sample_rate=0.0, rng=Exploding())
        on = QualityMonitor(sample_rate=1.0, rng=Exploding())
        assert not off.should_sample()
        assert on.should_sample()

    def test_epsilon_for_prefers_explicit_guarantee(self):
        fixed = QualityMonitor(epsilon=0.2)
        derived = QualityMonitor()
        assert fixed.epsilon_for(64) == 0.2
        assert derived.epsilon_for(64) == pytest.approx(theoretical_epsilon(64))


class TestShadowVerification:
    def test_healthy_run_stays_silent(self):
        engine = make_engine(sample_rate=1.0)
        engine.query(mixed_queries(90))
        quality = engine.quality
        assert quality.checks >= 60  # near-zero exacts may be skipped
        assert quality.alerts() == []
        snapshot = quality.snapshot()
        assert snapshot["alerts"] == []
        assert set(snapshot["series"]) >= {"t/grid", "t/compound"}

    def test_drift_alert_fires_quickly_after_injected_scale_error(self):
        engine = make_engine(sample_rate=1.0)
        # Shadow the map builder *before* any maps are cached, so every
        # served estimate is scaled while the exact distance is not.
        restore = inject_scale_error(engine.pool("t"), 2.0)
        try:
            engine.query(mixed_queries(90))
        finally:
            restore()
        kinds = {alert.kind for alert in engine.quality.alerts()}
        assert "drift" in kinds
        drift = next(
            a for a in engine.quality.alerts() if a.kind == "drift"
        )
        # ratio ~2 against eps(64) ~ 0.34 ramps the CUSUM fast: the
        # alarm must land within a handful of checks, not hundreds.
        assert drift.checks <= 30
        assert drift.observed >= drift.bound

    def test_quantile_breach_alert_on_miscalibration(self):
        engine = make_engine(sample_rate=1.0)
        restore = inject_scale_error(engine.pool("t"), 2.0)
        try:
            engine.query(mixed_queries(90))
        finally:
            restore()
        breaches = [
            a for a in engine.quality.alerts() if a.kind == "quantile_breach"
        ]
        assert breaches
        assert all(a.observed > a.bound for a in breaches)

    def test_alerts_deduplicate_per_series_and_kind(self):
        engine = make_engine(sample_rate=1.0)
        restore = inject_scale_error(engine.pool("t"), 2.0)
        try:
            engine.query(mixed_queries(60))
            before = len(engine.quality.alerts())
            engine.query(mixed_queries(60))
        finally:
            restore()
        assert len(engine.quality.alerts()) == before

    def test_near_zero_exact_is_skipped(self):
        engine = make_engine(sample_rate=1.0)
        result = engine.distance("t", (0, 0, 8, 8), (0, 0, 8, 8))
        quality = engine.quality
        # identical rectangles -> exact distance 0 -> check skipped
        assert math.isnan(
            quality.verify("t", engine.pool("t"),
                           _parse_one(engine, ("t", (0, 0, 8, 8), (0, 0, 8, 8))),
                           result)
        )

    def test_zero_rate_disables_the_shadow_path(self):
        engine = make_engine(sample_rate=0.0)
        engine.query(mixed_queries(30))
        assert engine.quality.checks == 0
        spans = [s["name"] for s in engine.tracer.timeline()]
        assert "quality.verify" not in spans

    def test_verify_span_wraps_the_shadow_work(self):
        engine = make_engine(sample_rate=1.0)
        engine.query(mixed_queries(9))
        spans = [s["name"] for s in engine.tracer.timeline()]
        assert "quality.verify" in spans

    def test_observe_batch_ignores_unknown_tables(self):
        quality = QualityMonitor(sample_rate=1.0, rng=random.Random(3))
        engine = make_engine(sample_rate=0.0)
        queries = [_parse_one(engine, q) for q in mixed_queries(6)]
        results = engine.query(mixed_queries(6))
        assert quality.observe_batch(queries, results, lambda name: None) == 0

    def test_reset_clears_alerts_and_counters(self):
        engine = make_engine(sample_rate=1.0)
        restore = inject_scale_error(engine.pool("t"), 2.0)
        try:
            engine.query(mixed_queries(60))
        finally:
            restore()
        assert engine.quality.alerts()
        engine.quality.reset()
        assert engine.quality.alerts() == []
        assert engine.quality.checks == 0


class TestEngineAndExportIntegration:
    def test_stats_snapshot_carries_quality_section(self):
        engine = make_engine(sample_rate=1.0)
        engine.query(mixed_queries(30))
        snapshot = engine.stats_snapshot()
        quality = snapshot["quality"]
        assert quality["sample_rate"] == 1.0
        assert quality["checks"] >= 20
        assert "series" in quality and quality["series"]

    def test_rel_error_histograms_render_and_lint_clean(self):
        engine = make_engine(sample_rate=1.0)
        engine.query(mixed_queries(30))
        text = render_prometheus(engine.registry.snapshot())
        assert lint_prometheus(text) == []
        assert "estimate_rel_error_bucket" in text
        assert 'table="t"' in text and 'strategy="grid"' in text
        assert "quality_checks_total" in text


def _parse_one(engine, query):
    from repro.serve.planner import RectQuery

    return RectQuery.parse(query)
