"""Tests for repro.core.estimators: accuracy of sketched distances.

These are the Theorem 1/2 guarantees made executable: for a large-ish
sketch the estimate must fall within a few percent of the exact Lp
distance, for every p in (0, 2].

All Monte Carlo draws are fixed-seed (audited by
``test_determinism.py``), so the suite is deterministic; the tolerance
comments document how far each gate sits from its expected value — the
risk a *fresh* seed would take, not a flake budget for this one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SketchGenerator, estimate_distance, lp_distance
from repro.core.estimators import estimate_distance_values
from repro.errors import IncompatibleSketchError, ParameterError


def make_pair(shape=(8, 8), seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape), rng.normal(size=shape)


class TestAccuracy:
    # The sketch error is ~c(p)/sqrt(k) with a constant that blows up as
    # p -> 0 (the |stable| density at its median flattens, so the sample
    # median concentrates slowly).  Tolerances below reflect that: tight
    # for moderate p, wide for the very heavy-tailed p = 0.25.
    @pytest.mark.parametrize(
        "p,tolerance",
        [(0.25, 0.35), (0.5, 0.2), (0.8, 0.15), (1.0, 0.15), (1.25, 0.15), (1.5, 0.15), (2.0, 0.1)],
    )
    def test_relative_error_small_for_large_k(self, p, tolerance):
        """Median over a few independent sketch draws at k=512 lands
        within a p-dependent band of the exact distance."""
        x, y = make_pair(seed=int(p * 10))
        exact = lp_distance(x, y, p)
        estimates = [
            estimate_distance(*map(SketchGenerator(p=p, k=512, seed=s).sketch, (x, y)))
            for s in range(9)
        ]
        assert abs(np.median(estimates) - exact) / exact < tolerance

    @pytest.mark.parametrize("p,tolerance", [(0.5, 0.12), (1.0, 0.08), (2.0, 0.08)])
    def test_median_unbiasedness_across_generators(self, p, tolerance):
        """Across many independent sketch draws the estimate centres on
        the exact distance (the median-of-stable argument).  The residual
        tolerance is the Monte Carlo noise of a median over 100 draws."""
        x, y = make_pair(seed=3)
        exact = lp_distance(x, y, p)
        estimates = []
        for seed in range(100):
            gen = SketchGenerator(p=p, k=64, seed=seed)
            estimates.append(estimate_distance(gen.sketch(x), gen.sketch(y)))
        assert abs(np.median(estimates) - exact) / exact < tolerance

    def test_accuracy_improves_with_k(self):
        """The epsilon ~ 1/sqrt(k) behaviour, checked coarsely."""
        x, y = make_pair(seed=5)
        exact = lp_distance(x, y, 1.0)

        def mean_abs_rel_error(k):
            errors = []
            for seed in range(40):
                gen = SketchGenerator(p=1.0, k=k, seed=seed)
                est = estimate_distance(gen.sketch(x), gen.sketch(y))
                errors.append(abs(est - exact) / exact)
            return np.mean(errors)

        assert mean_abs_rel_error(256) < mean_abs_rel_error(8)

    def test_identical_objects_have_zero_distance(self):
        x, _ = make_pair()
        gen = SketchGenerator(p=1.0, k=32, seed=0)
        assert estimate_distance(gen.sketch(x), gen.sketch(x)) == 0.0

    def test_scale_equivariance(self):
        """Estimate(c x, c y) == c Estimate(x, y) exactly (linearity)."""
        x, y = make_pair(seed=8)
        gen = SketchGenerator(p=0.5, k=64, seed=1)
        base = estimate_distance(gen.sketch(x), gen.sketch(y))
        scaled = estimate_distance(gen.sketch(3.0 * x), gen.sketch(3.0 * y))
        assert scaled == pytest.approx(3.0 * base, rel=1e-9)


class TestL2Estimator:
    def test_l2_method_close_to_exact(self):
        x, y = make_pair(seed=9)
        gen = SketchGenerator(p=2.0, k=512, seed=2)
        estimate = estimate_distance(gen.sketch(x), gen.sketch(y), method="l2")
        exact = lp_distance(x, y, 2.0)
        assert abs(estimate - exact) / exact < 0.15

    def test_auto_uses_l2_for_p2(self):
        x, y = make_pair(seed=10)
        gen = SketchGenerator(p=2.0, k=128, seed=3)
        auto = estimate_distance(gen.sketch(x), gen.sketch(y), method="auto")
        l2 = estimate_distance(gen.sketch(x), gen.sketch(y), method="l2")
        assert auto == l2

    def test_median_also_valid_for_p2(self):
        x, y = make_pair(seed=11)
        gen = SketchGenerator(p=2.0, k=512, seed=4)
        estimate = estimate_distance(gen.sketch(x), gen.sketch(y), method="median")
        exact = lp_distance(x, y, 2.0)
        assert abs(estimate - exact) / exact < 0.2

    def test_l2_method_rejected_for_other_p(self):
        x, y = make_pair(seed=12)
        gen = SketchGenerator(p=1.0, k=16, seed=5)
        with pytest.raises(ParameterError):
            estimate_distance(gen.sketch(x), gen.sketch(y), method="l2")


class TestValidation:
    def test_incompatible_sketches_rejected(self):
        x, y = make_pair(seed=13)
        a = SketchGenerator(p=1.0, k=16, seed=0).sketch(x)
        b = SketchGenerator(p=1.0, k=16, seed=1).sketch(y)
        with pytest.raises(IncompatibleSketchError):
            estimate_distance(a, b)

    def test_unknown_method(self):
        x, y = make_pair(seed=14)
        gen = SketchGenerator(p=1.0, k=16, seed=0)
        with pytest.raises(ParameterError):
            estimate_distance(gen.sketch(x), gen.sketch(y), method="mode")

    def test_values_path_rejects_empty(self):
        with pytest.raises(ParameterError):
            estimate_distance_values(np.array([]), 1.0)

    def test_values_path_rejects_2d(self):
        with pytest.raises(ParameterError):
            estimate_distance_values(np.zeros((2, 2)), 1.0)


class TestPairwiseOrdering:
    """What clustering actually needs: 'which of y, z is x closer to?'"""

    @pytest.mark.parametrize("p", [0.5, 1.0, 2.0])
    def test_pairwise_comparisons_mostly_correct(self, p):
        rng = np.random.default_rng(21)
        gen = SketchGenerator(p=p, k=128, seed=77)
        correct = 0
        trials = 100
        for _ in range(trials):
            x = rng.normal(size=(6, 6))
            y = x + rng.normal(size=(6, 6))
            z = x + 2.0 * rng.normal(size=(6, 6))  # clearly farther on average
            exact_closer = lp_distance(x, y, p) < lp_distance(x, z, p)
            sx, sy, sz = gen.sketch(x), gen.sketch(y), gen.sketch(z)
            sketch_closer = estimate_distance(sx, sy) < estimate_distance(sx, sz)
            correct += exact_closer == sketch_closer
        # Per-trial success is empirically >= 0.95 at k=128 (the two
        # distances differ by ~2x); a Binomial(100, 0.95) puts 85 or
        # fewer successes more than 4 sigma out, ~1e-5 for a fresh seed.
        assert correct / trials > 0.85
