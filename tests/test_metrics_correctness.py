"""Tests for repro.metrics.correctness (Definitions 7-9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.metrics import (
    average_correctness,
    cumulative_correctness,
    pairwise_comparison_correctness,
)


class TestCumulative:
    def test_perfect(self):
        assert cumulative_correctness([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_cancellation(self):
        # Over- and under-estimates cancel in the cumulative measure.
        assert cumulative_correctness([0.5, 1.5], [1.0, 1.0]) == 1.0

    def test_systematic_overestimate(self):
        assert cumulative_correctness([2.0, 2.0], [1.0, 1.0]) == 2.0

    def test_zero_exact_sum_rejected(self):
        with pytest.raises(ParameterError):
            cumulative_correctness([1.0], [0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            cumulative_correctness([1.0, 2.0], [1.0])


class TestAverage:
    def test_perfect(self):
        assert average_correctness([3.0, 4.0], [3.0, 4.0]) == 1.0

    def test_no_cancellation(self):
        # Same data as the cumulative cancellation case: here errors add.
        assert average_correctness([0.5, 1.5], [1.0, 1.0]) == pytest.approx(0.5)

    def test_zero_exact_zero_approx_is_correct(self):
        assert average_correctness([0.0, 1.0], [0.0, 1.0]) == 1.0

    def test_zero_exact_nonzero_approx_is_full_error(self):
        assert average_correctness([1.0], [0.0]) == 0.0

    def test_ten_percent_errors(self):
        assert average_correctness([0.9, 1.1], [1.0, 1.0]) == pytest.approx(0.9)


class TestPairwise:
    def test_all_correct(self):
        score = pairwise_comparison_correctness(
            approx_xy=[1.0, 5.0], approx_xz=[2.0, 3.0],
            exact_xy=[1.1, 4.0], exact_xz=[1.9, 3.5],
        )
        assert score == 1.0

    def test_all_wrong(self):
        score = pairwise_comparison_correctness(
            approx_xy=[2.0], approx_xz=[1.0],
            exact_xy=[1.0], exact_xz=[2.0],
        )
        assert score == 0.0

    def test_half(self):
        score = pairwise_comparison_correctness(
            approx_xy=[1.0, 2.0], approx_xz=[2.0, 1.0],
            exact_xy=[1.0, 1.0], exact_xz=[2.0, 2.0],
        )
        assert score == 0.5

    def test_ties_count_as_correct(self):
        score = pairwise_comparison_correctness(
            approx_xy=[1.0], approx_xz=[1.0],
            exact_xy=[1.0], exact_xz=[2.0],
        )
        assert score == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            pairwise_comparison_correctness([1.0], [1.0, 2.0], [1.0], [1.0, 2.0])


class TestEndToEndWithSketches:
    def test_sketched_distances_score_high(self):
        from repro.core import SketchGenerator, estimate_distance, lp_distance

        rng = np.random.default_rng(0)
        gen = SketchGenerator(p=1.0, k=128, seed=1)
        approx, exact = [], []
        for _ in range(50):
            x, y = rng.normal(size=(6, 6)), rng.normal(size=(6, 6))
            approx.append(estimate_distance(gen.sketch(x), gen.sketch(y)))
            exact.append(lp_distance(x, y, 1.0))
        assert cumulative_correctness(approx, exact) == pytest.approx(1.0, abs=0.1)
        assert average_correctness(approx, exact) > 0.85
