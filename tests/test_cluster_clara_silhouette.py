"""Tests for CLARA, SubsetOracle, and silhouette analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    Clara,
    KMeans,
    SubsetOracle,
    silhouette_samples,
    silhouette_score,
)
from repro.core import ExactLpOracle, PrecomputedSketchOracle, SketchGenerator
from repro.errors import ParameterError

from tests.test_cluster_kmeans import blob_tiles, clusters_match_truth


class TestSubsetOracle:
    def test_delegates_with_translation(self):
        tiles, _ = blob_tiles(n_per=4)
        parent = ExactLpOracle(tiles, p=1.0)
        subset = SubsetOracle(parent, [2, 5, 7])
        assert subset.n_items == 3
        assert subset.distance(0, 2) == pytest.approx(parent.distance(2, 7))
        assert subset.to_parent(1) == 5

    def test_stats_accrue_on_parent(self):
        tiles, _ = blob_tiles(n_per=2)
        parent = ExactLpOracle(tiles, p=1.0)
        subset = SubsetOracle(parent, [0, 1])
        subset.distance(0, 1)
        assert parent.stats.comparisons == 1

    def test_validation(self):
        tiles, _ = blob_tiles(n_per=2)
        parent = ExactLpOracle(tiles, p=1.0)
        with pytest.raises(ParameterError):
            SubsetOracle(parent, [])
        with pytest.raises(ParameterError):
            SubsetOracle(parent, [0, 99])


class TestClara:
    def test_recovers_blobs(self):
        tiles, truth = blob_tiles(n_per=12, seed=1)
        result = Clara(k=3, n_samples=3, seed=0).fit(ExactLpOracle(tiles, p=1.0))
        assert clusters_match_truth(result.labels, truth)

    def test_medoids_are_items(self):
        tiles, _ = blob_tiles(n_per=8, seed=2)
        result = Clara(k=3, seed=0).fit(ExactLpOracle(tiles, p=1.0))
        for cluster, medoid in enumerate(result.meta["medoids"]):
            assert 0 <= medoid < len(tiles)
            assert result.labels[medoid] == cluster

    def test_sample_size_default_capped(self):
        tiles, _ = blob_tiles(n_per=3, seed=3)  # 9 items < 40 + 2k
        result = Clara(k=2, seed=0).fit(ExactLpOracle(tiles, p=1.0))
        assert result.meta["sample_size"] == len(tiles)

    def test_works_with_sketches(self):
        tiles, truth = blob_tiles(n_per=10, shape=(8, 8), seed=4)
        gen = SketchGenerator(p=1.0, k=64, seed=1)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        result = Clara(k=3, n_samples=3, seed=0).fit(oracle)
        assert clusters_match_truth(result.labels, truth)

    def test_more_samples_never_worse(self):
        tiles, _ = blob_tiles(n_per=10, separation=2.0, seed=5)
        oracle = ExactLpOracle(tiles, p=1.0)
        one = Clara(k=3, n_samples=1, seed=0).fit(oracle)
        five = Clara(k=3, n_samples=5, seed=0).fit(oracle)
        assert five.spread <= one.spread + 1e-9

    def test_validation(self):
        with pytest.raises(ParameterError):
            Clara(k=0)
        with pytest.raises(ParameterError):
            Clara(k=3, sample_size=2)
        with pytest.raises(ParameterError):
            Clara(k=5).fit(ExactLpOracle([np.ones((2, 2))] * 3, p=1.0))


class TestSilhouette:
    def test_good_partition_scores_high(self):
        tiles, truth = blob_tiles(n_per=6, seed=6)
        oracle = ExactLpOracle(tiles, p=2.0)
        assert silhouette_score(oracle, truth) > 0.7

    def test_bad_partition_scores_low(self):
        tiles, truth = blob_tiles(n_per=6, seed=7)
        oracle = ExactLpOracle(tiles, p=2.0)
        scrambled = np.roll(truth, len(truth) // 2)
        assert silhouette_score(oracle, scrambled) < silhouette_score(oracle, truth)

    def test_singletons_score_zero(self):
        tiles, _ = blob_tiles(n_per=1, n_blobs=3, seed=8)
        oracle = ExactLpOracle(tiles, p=2.0)
        samples = silhouette_samples(oracle, np.arange(3))
        np.testing.assert_array_equal(samples, np.zeros(3))

    def test_noise_excluded(self):
        tiles, truth = blob_tiles(n_per=4, seed=9)
        oracle = ExactLpOracle(tiles, p=2.0)
        labels = truth.copy()
        labels[0] = -1
        samples = silhouette_samples(oracle, labels)
        assert np.isnan(samples[0])
        assert np.isfinite(silhouette_score(oracle, labels))

    def test_choosing_k_by_silhouette(self):
        """Silhouette over a *sketched* oracle picks the true k."""
        tiles, _ = blob_tiles(n_per=8, n_blobs=3, shape=(8, 8), seed=10)
        gen = SketchGenerator(p=1.0, k=96, seed=2)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        scores = {}
        for k in (2, 3, 5):
            labels = KMeans(k, seed=1, n_init=3).fit(oracle).labels
            scores[k] = silhouette_score(oracle, labels)
        assert max(scores, key=scores.get) == 3

    def test_validation(self):
        tiles, truth = blob_tiles(n_per=2, seed=11)
        oracle = ExactLpOracle(tiles, p=2.0)
        with pytest.raises(ParameterError):
            silhouette_score(oracle, truth[:-1])
        with pytest.raises(ParameterError):
            silhouette_score(oracle, np.zeros(len(tiles), dtype=int))
