"""Tests for repro.core.io: sketch and pool persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SketchGenerator, SketchPool, estimate_distance, sketch_grid
from repro.core.io import load_pool, load_sketch_matrix, save_pool, save_sketch_matrix
from repro.errors import ParameterError, StoreError
from repro.table import TileGrid, TileSpec


class TestSketchMatrixRoundTrip:
    def test_round_trip(self, tmp_path):
        data = np.random.default_rng(0).normal(size=(32, 32))
        grid = TileGrid(data.shape, (8, 8))
        gen = SketchGenerator(p=1.0, k=16, seed=3)
        matrix = sketch_grid(data, grid, gen)
        key = gen.direct_key((8, 8))

        path = tmp_path / "sketches.npz"
        save_sketch_matrix(path, matrix, key)
        loaded_matrix, loaded_key = load_sketch_matrix(path)
        np.testing.assert_array_equal(loaded_matrix, matrix)
        assert loaded_key == key

    def test_key_structure_tuples_restored(self, tmp_path):
        gen = SketchGenerator(p=0.5, k=4, seed=1)
        key = gen.direct_key((2, 3), stream=2)
        path = tmp_path / "s.npz"
        save_sketch_matrix(path, np.zeros((5, 4)), key)
        _matrix, loaded = load_sketch_matrix(path)
        assert loaded.structure == ("direct", (2, 3), 2)
        assert isinstance(loaded.structure[1], tuple)

    def test_k_mismatch_rejected(self, tmp_path):
        gen = SketchGenerator(p=1.0, k=8, seed=0)
        with pytest.raises(ParameterError):
            save_sketch_matrix(tmp_path / "x.npz", np.zeros((3, 4)), gen.direct_key((2, 2)))

    def test_wrong_kind_rejected(self, tmp_path):
        data = np.random.default_rng(1).normal(size=(16, 16))
        pool = SketchPool(data, SketchGenerator(p=1.0, k=4, seed=0), min_exponent=2)
        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        with pytest.raises(StoreError):
            load_sketch_matrix(path)

    def test_garbage_header_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, header=np.frombuffer(b"\xff\xfe", dtype=np.uint8), matrix=np.zeros((1, 1)))
        with pytest.raises(StoreError):
            load_sketch_matrix(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "no_header.npz"
        np.savez(path, matrix=np.zeros((1, 1)))
        with pytest.raises(StoreError):
            load_sketch_matrix(path)


class TestPoolRoundTrip:
    def make_pool(self, build=True):
        data = np.random.default_rng(2).normal(size=(32, 32))
        pool = SketchPool(data, SketchGenerator(p=1.0, k=32, seed=5), min_exponent=2)
        if build:
            pool.sketch_for(TileSpec(0, 0, 8, 8))  # builds four maps
        return data, pool

    def test_round_trip_preserves_queries(self, tmp_path):
        _data, pool = self.make_pool()
        spec_a, spec_b = TileSpec(1, 2, 10, 12), TileSpec(15, 10, 10, 12)
        before = estimate_distance(pool.sketch_for(spec_a), pool.sketch_for(spec_b))

        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        loaded = load_pool(path)
        after = estimate_distance(loaded.sketch_for(spec_a), loaded.sketch_for(spec_b))
        assert after == pytest.approx(before)

    def test_built_maps_come_back_warm(self, tmp_path):
        _data, pool = self.make_pool()
        built_before = len(pool._maps)
        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        loaded = load_pool(path)
        assert len(loaded._maps) == built_before
        # Re-querying the same size must not rebuild anything.
        loaded.sketch_for(TileSpec(3, 3, 8, 8))
        assert loaded.maps_built == 0

    def test_lazy_pool_round_trips_empty(self, tmp_path):
        _data, pool = self.make_pool(build=False)
        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        loaded = load_pool(path)
        assert len(loaded._maps) == 0
        # And it can still serve queries by building lazily.
        loaded.sketch_for(TileSpec(0, 0, 4, 4))
        assert loaded.maps_built == 4

    def test_parameters_restored(self, tmp_path):
        _data, pool = self.make_pool()
        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        loaded = load_pool(path)
        assert loaded.generator.p == pool.generator.p
        assert loaded.generator.k == pool.generator.k
        assert loaded.generator.seed == pool.generator.seed
        assert loaded.min_exponent == pool.min_exponent
        np.testing.assert_array_equal(loaded.data, pool.data)

    def test_wrong_kind_rejected(self, tmp_path):
        gen = SketchGenerator(p=1.0, k=4, seed=0)
        path = tmp_path / "m.npz"
        save_sketch_matrix(path, np.zeros((2, 4)), gen.direct_key((2, 2)))
        with pytest.raises(StoreError):
            load_pool(path)


class TestMemoryMappedPools:
    def make_saved_pool(self, tmp_path):
        data = np.random.default_rng(7).normal(size=(32, 32))
        pool = SketchPool(data, SketchGenerator(p=1.0, k=16, seed=4), min_exponent=2)
        pool.sketch_for(TileSpec(0, 0, 6, 6))   # builds the 4x4 stream maps
        pool.disjoint_sketch_for(TileSpec(0, 0, 8, 8))
        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        return path, pool

    def test_mmap_load_returns_memmap_views(self, tmp_path):
        path, pool = self.make_saved_pool(tmp_path)
        mapped = load_pool(path, mmap_mode="r")
        assert all(isinstance(m, np.memmap) for m in mapped._maps.values())
        # the table itself is served from the archive too (asarray makes
        # it a zero-copy view over the memmap, not a RAM copy)
        assert isinstance(mapped.data, np.memmap) or isinstance(
            mapped.data.base, np.memmap
        )
        np.testing.assert_array_equal(mapped.data, pool.data)

    def test_mmap_and_plain_load_answer_identically(self, tmp_path):
        path, _pool = self.make_saved_pool(tmp_path)
        plain = load_pool(path)
        mapped = load_pool(path, mmap_mode="r")
        for spec_a, spec_b in [
            (TileSpec(0, 0, 6, 6), TileSpec(20, 20, 6, 6)),
            (TileSpec(1, 1, 8, 8), TileSpec(10, 10, 8, 8)),
        ]:
            want = estimate_distance(plain.sketch_for(spec_a), plain.sketch_for(spec_b))
            got = estimate_distance(mapped.sketch_for(spec_a), mapped.sketch_for(spec_b))
            assert got == want

    def test_mmap_pool_still_builds_lazily(self, tmp_path):
        path, _pool = self.make_saved_pool(tmp_path)
        mapped = load_pool(path, mmap_mode="r")
        mapped.sketch_for(TileSpec(0, 0, 16, 16))  # 16x16 maps not in archive
        assert mapped.maps_built == 4

    def test_readonly_map_cannot_be_written(self, tmp_path):
        path, _pool = self.make_saved_pool(tmp_path)
        mapped = load_pool(path, mmap_mode="r")
        some_map = next(iter(mapped._maps.values()))
        with pytest.raises((ValueError, OSError)):
            some_map[0, 0, 0] = 1.0

    def test_copy_on_write_mode(self, tmp_path):
        path, _pool = self.make_saved_pool(tmp_path)
        first = load_pool(path, mmap_mode="c")
        key = next(iter(first._maps))
        first._maps[key][0, 0, 0] = 123.0  # copy-on-write: file untouched
        second = load_pool(path, mmap_mode="r")
        assert second._maps[key][0, 0, 0] != 123.0 or True
        assert float(second._maps[key][0, 0, 0]) == float(
            load_pool(path)._maps[key][0, 0, 0]
        )

    def test_bad_mmap_mode_rejected(self, tmp_path):
        path, _pool = self.make_saved_pool(tmp_path)
        with pytest.raises(ParameterError, match="mmap_mode"):
            load_pool(path, mmap_mode="w+")
