"""Tests for repro.core.io: sketch and pool persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SketchGenerator, SketchPool, estimate_distance, sketch_grid
from repro.core.io import load_pool, load_sketch_matrix, save_pool, save_sketch_matrix
from repro.errors import ParameterError, StoreError
from repro.table import TileGrid, TileSpec


class TestSketchMatrixRoundTrip:
    def test_round_trip(self, tmp_path):
        data = np.random.default_rng(0).normal(size=(32, 32))
        grid = TileGrid(data.shape, (8, 8))
        gen = SketchGenerator(p=1.0, k=16, seed=3)
        matrix = sketch_grid(data, grid, gen)
        key = gen.direct_key((8, 8))

        path = tmp_path / "sketches.npz"
        save_sketch_matrix(path, matrix, key)
        loaded_matrix, loaded_key = load_sketch_matrix(path)
        np.testing.assert_array_equal(loaded_matrix, matrix)
        assert loaded_key == key

    def test_key_structure_tuples_restored(self, tmp_path):
        gen = SketchGenerator(p=0.5, k=4, seed=1)
        key = gen.direct_key((2, 3), stream=2)
        path = tmp_path / "s.npz"
        save_sketch_matrix(path, np.zeros((5, 4)), key)
        _matrix, loaded = load_sketch_matrix(path)
        assert loaded.structure == ("direct", (2, 3), 2)
        assert isinstance(loaded.structure[1], tuple)

    def test_k_mismatch_rejected(self, tmp_path):
        gen = SketchGenerator(p=1.0, k=8, seed=0)
        with pytest.raises(ParameterError):
            save_sketch_matrix(tmp_path / "x.npz", np.zeros((3, 4)), gen.direct_key((2, 2)))

    def test_wrong_kind_rejected(self, tmp_path):
        data = np.random.default_rng(1).normal(size=(16, 16))
        pool = SketchPool(data, SketchGenerator(p=1.0, k=4, seed=0), min_exponent=2)
        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        with pytest.raises(StoreError):
            load_sketch_matrix(path)

    def test_garbage_header_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, header=np.frombuffer(b"\xff\xfe", dtype=np.uint8), matrix=np.zeros((1, 1)))
        with pytest.raises(StoreError):
            load_sketch_matrix(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "no_header.npz"
        np.savez(path, matrix=np.zeros((1, 1)))
        with pytest.raises(StoreError):
            load_sketch_matrix(path)


class TestPoolRoundTrip:
    def make_pool(self, build=True):
        data = np.random.default_rng(2).normal(size=(32, 32))
        pool = SketchPool(data, SketchGenerator(p=1.0, k=32, seed=5), min_exponent=2)
        if build:
            pool.sketch_for(TileSpec(0, 0, 8, 8))  # builds four maps
        return data, pool

    def test_round_trip_preserves_queries(self, tmp_path):
        _data, pool = self.make_pool()
        spec_a, spec_b = TileSpec(1, 2, 10, 12), TileSpec(15, 10, 10, 12)
        before = estimate_distance(pool.sketch_for(spec_a), pool.sketch_for(spec_b))

        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        loaded = load_pool(path)
        after = estimate_distance(loaded.sketch_for(spec_a), loaded.sketch_for(spec_b))
        assert after == pytest.approx(before)

    def test_built_maps_come_back_warm(self, tmp_path):
        _data, pool = self.make_pool()
        built_before = len(pool._maps)
        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        loaded = load_pool(path)
        assert len(loaded._maps) == built_before
        # Re-querying the same size must not rebuild anything.
        loaded.sketch_for(TileSpec(3, 3, 8, 8))
        assert loaded.maps_built == 0

    def test_lazy_pool_round_trips_empty(self, tmp_path):
        _data, pool = self.make_pool(build=False)
        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        loaded = load_pool(path)
        assert len(loaded._maps) == 0
        # And it can still serve queries by building lazily.
        loaded.sketch_for(TileSpec(0, 0, 4, 4))
        assert loaded.maps_built == 4

    def test_parameters_restored(self, tmp_path):
        _data, pool = self.make_pool()
        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        loaded = load_pool(path)
        assert loaded.generator.p == pool.generator.p
        assert loaded.generator.k == pool.generator.k
        assert loaded.generator.seed == pool.generator.seed
        assert loaded.min_exponent == pool.min_exponent
        np.testing.assert_array_equal(loaded.data, pool.data)

    def test_wrong_kind_rejected(self, tmp_path):
        gen = SketchGenerator(p=1.0, k=4, seed=0)
        path = tmp_path / "m.npz"
        save_sketch_matrix(path, np.zeros((2, 4)), gen.direct_key((2, 2)))
        with pytest.raises(StoreError):
            load_pool(path)
