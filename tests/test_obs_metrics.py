"""Tests for the instrumentation layer: registry, instruments, ledger."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.obs.ledger import CounterLedger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter({})
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        c = Counter({})
        with pytest.raises(ParameterError):
            c.inc(-1)

    def test_reset(self):
        c = Counter({})
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge({})
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_callback_wins(self):
        g = Gauge({})
        g.set_function(lambda: 42)
        g.set(7)  # stored value is shadowed by the callback
        assert g.value == 42


class TestHistogram:
    def test_below_lowest_edge_lands_in_first_bin(self):
        h = Histogram((1.0, 10.0))
        h.record(0.001)
        snap = h.snapshot()
        assert snap["counts"][0] == 1
        assert sum(snap["counts"]) == 1

    def test_above_highest_edge_lands_in_overflow_bin(self):
        h = Histogram((1.0, 10.0))
        h.record(1e9)
        snap = h.snapshot()
        assert snap["counts"][-1] == 1

    def test_empty_mean_is_zero(self):
        h = Histogram((1.0, 10.0))
        assert h.mean == 0.0
        assert h.snapshot()["count"] == 0

    def test_edge_value_goes_to_lower_bucket(self):
        # le semantics: a value exactly on an edge counts in the bucket
        # whose upper bound it is.
        h = Histogram((1.0, 10.0))
        h.record(1.0)
        assert h.snapshot()["counts"][0] == 1

    def test_observe_is_record(self):
        h = Histogram((1.0,))
        h.observe(0.5)
        assert h.snapshot()["count"] == 1

    def test_non_ascending_edges_rejected(self):
        with pytest.raises(ParameterError):
            Histogram((2.0, 1.0))
        with pytest.raises(ParameterError):
            Histogram(())

    def test_powers_of_two_edges(self):
        h = Histogram.powers_of_two(highest=8)
        assert h.edges == (1.0, 2.0, 4.0, 8.0)

    def test_quantile_interpolates_within_a_bucket(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.record(v)
        # rank 2 of 4: one observation below the (1, 2] bucket, so the
        # rank sits halfway through its two observations -> 1.5
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(0.0) == pytest.approx(0.0)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_quantile_of_overflow_clamps_to_observed_max(self):
        h = Histogram((1.0,))
        h.record(50.0)
        h.record(90.0)
        assert h.quantile(0.99) == 90.0

    def test_quantile_empty_and_bad_q(self):
        h = Histogram((1.0,))
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ParameterError):
            h.quantile(1.5)

    def test_snapshot_carries_p50_p90_p99(self):
        h = Histogram((0.001, 0.1, 1.0))
        for v in (0.01, 0.02, 0.05, 0.5):
            h.record(v)
        quantiles = h.snapshot()["quantiles"]
        assert set(quantiles) == {"p50", "p90", "p99"}
        assert quantiles["p50"] <= quantiles["p90"] <= quantiles["p99"]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), max_size=50))
    def test_snapshot_invariants(self, values):
        h = Histogram((0.001, 0.1, 1.0, 100.0))
        for v in values:
            h.record(v)
        snap = h.snapshot()
        assert snap["count"] == len(values)
        assert sum(snap["counts"]) == len(values)
        assert len(snap["counts"]) == len(snap["edges"]) + 1
        if values:
            assert snap["total"] == pytest.approx(sum(values))
            assert snap["mean"] == pytest.approx(sum(values) / len(values))
            if max(values) > 0:
                assert snap["max"] == max(values)


class TestMetricsRegistry:
    def test_counter_is_idempotent_per_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", table="x")
        b = reg.counter("hits_total", table="x")
        c = reg.counter("hits_total", table="y")
        assert a is b and a is not c

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ParameterError):
            reg.gauge("thing")

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ParameterError):
            reg.counter("bad name!")
        with pytest.raises(ParameterError):
            reg.counter("0leading")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", table="t").inc(3)
        reg.gauge_function("live_bytes", lambda: 17)
        reg.histogram("lat_seconds").record(0.5)
        snap = reg.snapshot()
        assert snap["hits_total"]["type"] == "counter"
        assert snap["hits_total"]["samples"][0]["labels"] == {"table": "t"}
        assert snap["hits_total"]["samples"][0]["value"] == 3
        assert snap["live_bytes"]["samples"][0]["value"] == 17
        assert snap["lat_seconds"]["samples"][0]["histogram"]["count"] == 1

    def test_histogram_edges_first_creation_wins(self):
        reg = MetricsRegistry()
        a = reg.histogram("h", edges=(1.0, 2.0))
        b = reg.histogram("h", edges=(5.0, 6.0))
        assert b is a and a.edges == (1.0, 2.0)

    def test_contains_and_names(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        assert "a_total" in reg
        assert "b_total" not in reg
        assert "a_total" in reg.names()

    def test_reset_zeroes_everything(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(5)
        reg.histogram("h").record(1.0)
        reg.reset()
        assert reg.snapshot()["a_total"]["samples"][0]["value"] == 0
        assert reg.snapshot()["h"]["samples"][0]["histogram"]["count"] == 0

    def test_concurrent_counter_increments(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("shared_total").inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("shared_total").value == 8000


class _Ledger(CounterLedger):
    _PREFIX = "demo_"
    _COUNTERS = ("widgets", "gadgets")


class TestCounterLedger:
    def test_attributes_read_counters(self):
        led = _Ledger()
        assert led.widgets == 0
        led.tally(widgets=2, gadgets=1)
        led.tally(widgets=1)
        assert led.widgets == 3 and led.gadgets == 1

    def test_unknown_name_raises(self):
        led = _Ledger()
        with pytest.raises(AttributeError):
            led.tally(bogus=1)
        with pytest.raises(AttributeError):
            led.bogus

    def test_as_dict_and_reset(self):
        led = _Ledger()
        led.tally(widgets=4)
        assert led.as_dict() == {"widgets": 4, "gadgets": 0}
        led.reset()
        assert led.as_dict() == {"widgets": 0, "gadgets": 0}

    def test_bind_carries_counts_with_labels(self):
        led = _Ledger()
        led.tally(widgets=7)
        shared = MetricsRegistry()
        led.bind(shared, table="t")
        assert led.widgets == 7  # carried over
        sample = shared.snapshot()["demo_widgets_total"]["samples"][0]
        assert sample == {"labels": {"table": "t"}, "value": 7}
        led.tally(widgets=1)
        assert led.widgets == 8

    def test_rebind_same_registry_does_not_double(self):
        led = _Ledger()
        led.tally(widgets=5)
        shared = MetricsRegistry()
        led.bind(shared, table="t")
        led.bind(shared, table="t")
        assert led.widgets == 5


class TestHistogramExemplars:
    """Trace-id exemplars: sampled pointers from buckets to traces."""

    def test_record_without_trace_id_keeps_no_exemplar(self):
        h = Histogram([0.1, 1.0])
        h.record(0.05)
        assert h.exemplars == {}
        assert "exemplars" not in h.snapshot()

    def test_last_traced_observation_per_bucket_wins(self):
        h = Histogram([0.1, 1.0])
        h.record(0.05, trace_id="first")
        h.record(0.06, trace_id="second")
        h.record(0.5, trace_id="mid")
        h.record(5.0, trace_id="overflow")
        snap = h.snapshot()["exemplars"]
        assert snap["0"] == {"trace_id": "second", "value": 0.06}
        assert snap["1"] == {"trace_id": "mid", "value": 0.5}
        assert snap["2"] == {"trace_id": "overflow", "value": 5.0}

    def test_reset_clears_exemplars(self):
        h = Histogram([0.1])
        h.record(0.05, trace_id="x")
        h.reset()
        assert h.exemplars == {}

    def test_observe_alias_accepts_trace_id(self):
        h = Histogram([0.1])
        h.observe(0.05, trace_id="x")
        assert h.exemplars["0"]["trace_id"] == "x"

    def test_exemplars_survive_a_json_round_trip(self):
        import json

        h = Histogram([0.1, 1.0])
        h.record(0.05, trace_id="abc")
        restored = json.loads(json.dumps(h.snapshot()))
        assert restored["exemplars"]["0"]["trace_id"] == "abc"

    def test_merge_ignores_exemplars(self):
        from repro.obs.metrics import merge_histogram_snapshots

        h = Histogram([0.1, 1.0])
        h.record(0.05, trace_id="abc")
        merged = merge_histogram_snapshots([h.snapshot(), h.snapshot()])
        assert merged["count"] == 2
        assert "exemplars" not in merged
