"""Tests for repro.mining.anomalies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExactLpOracle, PrecomputedSketchOracle, SketchGenerator
from repro.errors import ParameterError
from repro.mining import knn_outlier_scores, outlier_scores, top_outliers


def tiles_with_outlier(n_normal=10, shape=(4, 4), seed=0):
    rng = np.random.default_rng(seed)
    tiles = [rng.normal(size=shape) for _ in range(n_normal)]
    tiles.append(rng.normal(size=shape) + 25.0)  # the anomaly, last index
    return tiles


def two_mode_tiles(seed=1):
    """Two tight normal modes plus one anomaly: breaks the mean scorer's
    margin but not the kNN scorer's."""
    rng = np.random.default_rng(seed)
    tiles = [rng.normal(size=(4, 4)) * 0.1 for _ in range(8)]
    tiles += [rng.normal(size=(4, 4)) * 0.1 + 30.0 for _ in range(8)]
    tiles.append(rng.normal(size=(4, 4)) + 15.0)  # lonely midpoint
    return tiles


class TestMeanScores:
    def test_anomaly_scores_highest(self):
        oracle = ExactLpOracle(tiles_with_outlier(), p=1.0)
        scores = outlier_scores(oracle)
        assert np.argmax(scores) == len(scores) - 1

    def test_scores_shape_and_positivity(self):
        oracle = ExactLpOracle(tiles_with_outlier(), p=2.0)
        scores = outlier_scores(oracle)
        assert scores.shape == (11,)
        assert np.all(scores > 0)

    def test_needs_two_items(self):
        with pytest.raises(ParameterError):
            outlier_scores(ExactLpOracle([np.ones((2, 2))], p=1.0))


class TestKnnScores:
    def test_anomaly_scores_highest(self):
        oracle = ExactLpOracle(tiles_with_outlier(seed=2), p=1.0)
        scores = knn_outlier_scores(oracle, n_neighbors=2)
        assert np.argmax(scores) == len(scores) - 1

    def test_lonely_midpoint_found_in_two_mode_data(self):
        oracle = ExactLpOracle(two_mode_tiles(), p=1.0)
        scores = knn_outlier_scores(oracle, n_neighbors=3)
        assert np.argmax(scores) == 16  # the midpoint anomaly

    def test_neighbor_rank_monotone(self):
        oracle = ExactLpOracle(tiles_with_outlier(seed=3), p=1.0)
        one = knn_outlier_scores(oracle, 1)
        three = knn_outlier_scores(oracle, 3)
        assert np.all(three >= one - 1e-12)

    def test_validation(self):
        oracle = ExactLpOracle(tiles_with_outlier(), p=1.0)
        with pytest.raises(ParameterError):
            knn_outlier_scores(oracle, 0)
        with pytest.raises(ParameterError):
            knn_outlier_scores(oracle, oracle.n_items)


class TestTopOutliers:
    def test_ordering_and_count(self):
        oracle = ExactLpOracle(tiles_with_outlier(seed=4), p=1.0)
        top = top_outliers(oracle, 3)
        assert len(top) == 3
        assert top[0][0] == oracle.n_items - 1
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)

    def test_knn_method(self):
        oracle = ExactLpOracle(two_mode_tiles(seed=5), p=1.0)
        top = top_outliers(oracle, 1, method="knn", n_neighbors=3)
        assert top[0][0] == 16

    def test_works_on_sketched_oracle(self):
        tiles = tiles_with_outlier(shape=(8, 8), seed=6)
        gen = SketchGenerator(p=1.0, k=64, seed=1)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        top = top_outliers(oracle, 1)
        assert top[0][0] == len(tiles) - 1

    def test_validation(self):
        oracle = ExactLpOracle(tiles_with_outlier(), p=1.0)
        with pytest.raises(ParameterError):
            top_outliers(oracle, 0)
        with pytest.raises(ParameterError):
            top_outliers(oracle, 2, method="zscore")
