"""Tests for repro.table.tabular: the TabularData container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError, ShapeError
from repro.table import TabularData, TileSpec


def make_table(shape=(6, 8), seed=0):
    return TabularData(np.random.default_rng(seed).normal(size=shape))


class TestConstruction:
    def test_values_copied_to_float64(self):
        table = TabularData([[1, 2], [3, 4]])
        assert table.values.dtype == np.float64
        assert table.shape == (2, 2)

    def test_non_2d_rejected(self):
        with pytest.raises(ShapeError):
            TabularData([1, 2, 3])
        with pytest.raises(ShapeError):
            TabularData(np.zeros((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            TabularData(np.zeros((0, 5)))

    def test_label_length_checked(self):
        with pytest.raises(ParameterError):
            TabularData(np.zeros((2, 2)), row_labels=["a"])
        with pytest.raises(ParameterError):
            TabularData(np.zeros((2, 2)), col_labels=["a", "b", "c"])

    def test_labels_stored(self):
        table = TabularData(np.zeros((2, 3)), row_labels=["r0", "r1"])
        assert table.row_labels == ["r0", "r1"]
        assert table.col_labels is None

    def test_nbytes(self):
        assert make_table((4, 4)).nbytes == 4 * 4 * 8


class TestTiles:
    def test_tile_matches_slice(self):
        table = make_table()
        spec = TileSpec(1, 2, 3, 4)
        np.testing.assert_array_equal(table.tile(spec), table.values[1:4, 2:6])

    def test_tile_out_of_bounds(self):
        with pytest.raises(ShapeError):
            make_table((4, 4)).tile(TileSpec(2, 2, 3, 3))

    def test_grid(self):
        grid = make_table((6, 8)).grid((3, 4))
        assert len(grid) == 4


class TestTransformations:
    def test_scaled(self):
        table = make_table()
        np.testing.assert_allclose(table.scaled(2.5).values, table.values * 2.5)

    def test_dilated(self):
        table = make_table()
        np.testing.assert_allclose(table.dilated(-1.0).values, table.values - 1.0)

    def test_stitched_shapes(self):
        a = make_table((5, 4), seed=1)
        b = make_table((5, 6), seed=2)
        stitched = a.stitched(b)
        assert stitched.shape == (5, 10)
        np.testing.assert_array_equal(stitched.values[:, :4], a.values)
        np.testing.assert_array_equal(stitched.values[:, 4:], b.values)

    def test_stitched_row_mismatch(self):
        with pytest.raises(ShapeError):
            make_table((5, 4)).stitched(make_table((6, 4)))

    def test_stitched_labels(self):
        a = TabularData(np.zeros((2, 1)), col_labels=["t0"])
        b = TabularData(np.zeros((2, 2)), col_labels=["t1", "t2"])
        assert a.stitched(b).col_labels == ["t0", "t1", "t2"]

    def test_repr(self):
        assert "TabularData" in repr(make_table())
