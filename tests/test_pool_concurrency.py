"""Concurrency regression tests: pools hammered from many threads.

The serving engine answers queries from ``socketserver`` handler
threads, so a single pool sees concurrent lazy builds, cache hits, and
budget evictions.  These tests pin the three guarantees the pool makes:

* a missing map is built exactly **once** no matter how many threads
  race for it (waiters block on the winner's event);
* a map handed to a reader stays valid even if the pool evicts it
  mid-read, so estimates are stable under eviction churn;
* a shared :class:`MapBudget` keeps its byte accounting consistent
  across pools under concurrent charge/evict traffic.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.estimators import estimate_distance
from repro.core.generator import SketchGenerator
from repro.core.pool import MapBudget, SketchPool
from repro.table.tiles import TileSpec

N_THREADS = 12


def make_pool(seed=0, shape=(64, 64), **kwargs):
    data = np.random.default_rng(seed).normal(size=shape)
    return SketchPool(data, SketchGenerator(p=1.0, k=16, seed=3), **kwargs)


def hammer(fn, n_threads=N_THREADS, rounds=1):
    """Run ``fn(thread_index)`` from many threads after a common barrier."""
    barrier = threading.Barrier(n_threads)
    failures: list[BaseException] = []

    def runner(index):
        barrier.wait()
        try:
            for _ in range(rounds):
                fn(index)
        except BaseException as exc:  # pragma: no cover - diagnostic
            failures.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    if failures:
        raise failures[0]


class TestNoDuplicateBuilds:
    def test_racing_compound_queries_build_each_map_once(self):
        pool = make_pool()
        spec = TileSpec(1, 2, 12, 12)  # compound: four 8x8 maps

        hammer(lambda _i: pool.sketch_for(spec))
        # 4 streams of one dyadic size: exactly 4 builds, never 4 * threads
        assert pool.maps_built == 4
        assert len(pool._maps) == 4

    def test_racing_mixed_sizes_build_each_key_once(self):
        pool = make_pool()
        sizes = [(8, 8), (16, 16), (8, 16), (16, 8)]

        def work(index):
            h, w = sizes[index % len(sizes)]
            pool.disjoint_sketch_for(TileSpec(0, 0, h, w))
            pool.sketch_for(TileSpec(3, 3, h + h // 2, w + w // 2))

        hammer(work, rounds=3)
        built_keys = set(pool._maps)
        assert pool.maps_built == len(built_keys)  # one build per distinct key

    def test_parallel_build_all_is_exact(self):
        pool = make_pool(shape=(32, 32))
        pool.build_all(workers=4)
        n_keys = len(pool._maps)
        assert pool.maps_built == n_keys
        pool.build_all(workers=4)  # idempotent: all hits, no rebuilds
        assert pool.maps_built == n_keys


class TestEvictionUnderLoad:
    def test_estimates_stable_while_budget_evicts(self):
        # Budget far below the working set, so every thread constantly
        # triggers evictions of maps other threads are reading.
        pool = make_pool(max_bytes=250_000)
        specs = [
            (TileSpec(0, 0, 8, 8), TileSpec(24, 24, 8, 8)),
            (TileSpec(0, 0, 16, 16), TileSpec(32, 32, 16, 16)),
            (TileSpec(2, 2, 12, 12), TileSpec(40, 8, 12, 12)),
            (TileSpec(1, 1, 24, 24), TileSpec(30, 30, 24, 24)),
        ]
        reference = {}
        for spec_a, spec_b in specs:
            reference[(spec_a, spec_b)] = estimate_distance(
                pool.sketch_for(spec_a), pool.sketch_for(spec_b)
            )

        def work(index):
            spec_a, spec_b = specs[index % len(specs)]
            got = estimate_distance(pool.sketch_for(spec_a), pool.sketch_for(spec_b))
            assert got == reference[(spec_a, spec_b)]

        hammer(work, rounds=4)
        assert pool.maps_evicted > 0  # the budget really was churning

    def test_shared_budget_accounting_stays_consistent(self):
        budget = MapBudget(max_bytes=300_000)
        pools = [make_pool(seed=s, budget=budget) for s in range(3)]

        def work(index):
            pool = pools[index % len(pools)]
            pool.sketch_for(TileSpec(index % 4, 0, 12, 12))
            pool.disjoint_sketch_for(TileSpec(0, 0, 16, 16))

        hammer(work, rounds=3)
        assert budget.used_bytes <= budget.max_bytes
        # the ledger must equal the bytes the pools actually hold
        assert budget.used_bytes == sum(pool.nbytes for pool in pools)
        assert budget.maps_evicted > 0

    def test_evicted_array_stays_readable(self):
        pool = make_pool(max_bytes=250_000)
        held = pool._map(3, 3, 0)  # keep a reference like an in-flight reader
        checksum = float(held.sum())
        pool.disjoint_sketch_for(TileSpec(0, 0, 32, 32))  # evicts the 8x8 map
        assert (3, 3, 0) not in pool._maps
        assert float(held.sum()) == checksum  # our view is still intact


class TestEngineConcurrency:
    def test_engine_queries_race_cleanly(self):
        from repro.serve import SketchEngine

        engine = SketchEngine(p=1.0, k=16, seed=4, max_bytes=600_000)
        rng = np.random.default_rng(0)
        engine.register_array("a", rng.normal(size=(64, 64)))
        engine.register_array("b", rng.normal(size=(64, 96)))
        batches = [
            [("a", (0, 0, 8, 8), (16, 16, 8, 8)),
             ("b", (0, 0, 12, 12), (24, 24, 12, 12))],
            [("b", (0, 0, 16, 32), (32, 32, 16, 32)),
             ("a", (4, 4, 24, 24), (32, 32, 24, 24), "disjoint")],
        ]
        expected = [[r.distance for r in engine.query(batch)] for batch in batches]

        def work(index):
            batch = batches[index % len(batches)]
            got = [r.distance for r in engine.query(batch)]
            assert got == expected[index % len(batches)]

        with ThreadPoolExecutor(max_workers=8) as executor:
            futures = [executor.submit(work, i) for i in range(32)]
            for future in futures:
                future.result()
        snap = engine.stats_snapshot()
        assert snap["queries"] == (32 + len(batches)) * 2
        assert snap["budget"]["used_bytes"] <= 600_000
