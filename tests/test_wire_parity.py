"""Differential tests of the binary wire protocol against JSON lines.

The binary frame layer (:mod:`repro.serve.wire`) exists to make the
serving hot path cheap, not to change a single answer.  This suite pins
that promise from four directions:

* **Codec round trips.**  Every encoder/decoder pair reproduces its
  input exactly — float64 distances bit for bit, awkward values
  (subnormals, ``nextafter`` neighbours, huge magnitudes) included.
* **Differential op parity.**  :class:`~repro.testing.WireDifferential`
  drives every wire op (ping/health/tables/stats/telemetry/query/
  update/trace) through a JSON client and a binary client against the
  *same* server — both the threaded :class:`SketchServer` and the
  asyncio :class:`AsyncSketchServer` — and requires identical answers:
  bitwise for value-carrying ops, structurally for timing-carrying
  ones.
* **Frame fuzzing.**  Hypothesis-generated garbage, truncated frames,
  and hostile length fields must yield typed errors
  (:class:`ProtocolError` / :class:`FrameSizeError`) without hangs,
  crashes, or — for over-limit declared lengths — a single payload
  byte being read.
* **float32 calibration.**  The engine's ``map_dtype="float32"``
  default halves sketch-map memory; estimates must stay inside the
  ``theoretical_epsilon`` band of the exact distance and track the
  float64 maps to float32 rounding noise.

Deterministic throughout: hypothesis runs under the ``deterministic``
profile from ``conftest.py`` and every rng is explicitly seeded.
"""

from __future__ import annotations

import io
import json
import math
import socket
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameSizeError, ProtocolError
from repro.obs.quality import theoretical_epsilon
from repro.serve import (
    AsyncSketchServer,
    BinaryTcpTransport,
    Client,
    SketchEngine,
    SketchServer,
)
from repro.serve import wire
from repro.serve.planner import STRATEGIES, RectQuery
from repro.testing import WireDifferential, structure

# Rectangle batches covering every concrete strategy (dyadic-aligned
# grid, overlapping compound, divisible-dims disjoint) plus auto
# routing, across two tables of different shapes.
PARITY_QUERIES = [
    ("t", (0, 0, 8, 8), (8, 64, 8, 8), "grid"),
    ("t", (0, 0, 12, 20), (16, 40, 12, 20), "compound"),
    ("t", (8, 0, 16, 16), (32, 64, 16, 16), "disjoint"),
    ("t", (0, 16, 8, 16), (40, 48, 8, 16)),
    ("u", (0, 0, 8, 8), (16, 16, 8, 8), "grid"),
    ("u", (4, 4, 8, 8), (24, 24, 8, 8), "disjoint"),
]


@pytest.fixture(scope="module")
def engine():
    engine = SketchEngine(p=1.0, k=16, seed=2)
    engine.register_array("t", np.random.default_rng(8).normal(size=(64, 96)))
    engine.register_array("u", np.random.default_rng(9).normal(size=(48, 48)))
    return engine


@pytest.fixture(scope="module", params=["threaded", "async"])
def server(request, engine):
    """Each parity test runs against both server implementations."""
    server_type = SketchServer if request.param == "threaded" else AsyncSketchServer
    with server_type(engine) as srv:
        srv.start()
        yield srv


def exact_distance(table: np.ndarray, query) -> float:
    _, (ra, ca, h, w), (rb, cb, h2, w2) = query[:3]
    return float(np.abs(
        table[ra:ra + h, ca:ca + w] - table[rb:rb + h2, cb:cb + w2]
    ).sum())


# ---------------------------------------------------------------------------
# Codec round trips
# ---------------------------------------------------------------------------


class TestCodecRoundTrip:
    @pytest.mark.parametrize("spec", ["<i8", "<f8", "|u1", "<f4", "<u4"])
    def test_array_block_roundtrip(self, spec):
        rng = np.random.default_rng(3)
        dtype = np.dtype(spec)
        if dtype.kind == "f":
            array = rng.normal(size=(5, 3)).astype(dtype)
        else:
            array = rng.integers(0, 100, size=(5, 3)).astype(dtype)
        blob = wire.encode_array(array)
        decoded, offset = wire.decode_array(memoryview(blob), 0)
        assert offset == len(blob)
        assert decoded.dtype == dtype
        assert decoded.tobytes() == array.tobytes()  # bit-identical

    def test_decoded_array_is_zero_copy_view(self):
        blob = wire.encode_array(np.arange(6, dtype="<f8"))
        view = memoryview(blob)
        decoded, _ = wire.decode_array(view, 0)
        assert decoded.base is not None  # a view, not a copy
        with pytest.raises((ValueError, RuntimeError)):
            decoded[0] = 1.0  # and read-only, like the buffer beneath it

    def test_query_request_roundtrip(self):
        request = {
            "op": "query",
            "queries": [RectQuery.parse(q).to_wire() for q in PARITY_QUERIES],
            "timeout": 1.5,
            "trace": {"trace_id": "abc", "span_id": "def"},
        }
        decoded = wire.decode_query_request(
            memoryview(wire.encode_query_request(request))
        )
        assert decoded["op"] == "query"
        assert decoded["timeout"] == 1.5
        assert decoded["trace"] == {"trace_id": "abc", "span_id": "def"}
        assert decoded["queries"] == [RectQuery.parse(q) for q in PARITY_QUERIES]

    def test_query_result_roundtrip_is_bit_exact(self):
        # Values that lose bits under any decimal round trip shorter
        # than repr: off-by-one-ulp neighbours, subnormals, extremes.
        awkward = [0.1 + 0.2, math.nextafter(1.0, 2.0), 5e-324,
                   1.7976931348623157e308, math.pi, -0.0]
        results = [{"distance": value, "strategy": STRATEGIES[i % len(STRATEGIES)]}
                   for i, value in enumerate(awkward)]
        decoded = wire.decode_query_result(
            memoryview(wire.encode_query_result(results))
        )["results"]
        for sent, got in zip(results, decoded):
            assert math.copysign(1.0, got.distance) == math.copysign(
                1.0, sent["distance"])
            assert got.distance == sent["distance"]
            assert got.strategy == sent["strategy"]

    def test_error_roundtrip_keeps_type_and_code(self):
        from repro.errors import ServerOverloadedError

        decoded = wire.decode_error(memoryview(
            wire.encode_error(ServerOverloadedError("too busy"))
        ))
        assert decoded == {"type": "ServerOverloadedError",
                           "message": "too busy", "code": "RETRY_LATER"}

    def test_frame_roundtrip_through_read_frame(self):
        payload = b"x" * 37
        stream = io.BytesIO(
            wire.encode_frame(wire.KIND_JSON_REQUEST, 99, payload)
            + wire.encode_frame(wire.KIND_ERROR, 0, b"{}")
        )
        first = wire.read_frame(stream.read)
        second = wire.read_frame(stream.read)
        assert first == (wire.KIND_JSON_REQUEST, 99, payload)
        assert second is not None and second[0] == wire.KIND_ERROR
        assert wire.read_frame(stream.read) is None  # clean EOF


# ---------------------------------------------------------------------------
# Frame fuzzing: garbage in, typed errors out, payloads never over-read
# ---------------------------------------------------------------------------


class TestFrameFuzz:
    @given(payload=st.binary(min_size=0, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_bytes_yield_typed_errors_or_eof(self, payload):
        stream = io.BytesIO(payload)
        try:
            while wire.read_frame(stream.read) is not None:
                pass
        except ProtocolError:
            pass  # FrameSizeError included: it *is* a ProtocolError

    @given(cut=st.integers(min_value=0, max_value=15))
    @settings(max_examples=16, deadline=None)
    def test_truncated_header_is_a_typed_error(self, cut):
        frame = wire.encode_frame(wire.KIND_QUERY_RESULT, 7, b"body")
        stream = io.BytesIO(frame[:cut])
        if cut == 0:
            assert wire.read_frame(stream.read) is None
        else:
            with pytest.raises(ProtocolError):
                wire.read_frame(stream.read)

    @given(drop=st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_truncated_payload_is_a_typed_error(self, drop):
        frame = wire.encode_frame(wire.KIND_JSON_RESULT, 1, b"y" * 20)
        with pytest.raises(ProtocolError, match="truncated frame payload"):
            wire.read_frame(io.BytesIO(frame[:-drop]).read)

    def test_over_limit_length_is_refused_before_any_payload_read(self):
        """The tentpole size-safety guarantee, pinned mechanically.

        The reader below *fails the test* if it is ever asked for a
        second chunk: the declared 4 GiB payload must be refused from
        the 16 header bytes alone.
        """
        header = wire.HEADER.pack(
            wire.KIND_JSON_REQUEST, 0, 0, 2**32 - 1, 0xBEEF
        )
        calls = []

        def read(n: int) -> bytes:
            calls.append(n)
            if len(calls) == 1:
                return header
            raise AssertionError(
                "payload bytes were read after an over-limit header"
            )

        with pytest.raises(FrameSizeError) as info:
            wire.read_frame(read, max_bytes=wire.MAX_FRAME_BYTES)
        assert info.value.request_id == 0xBEEF  # attributable to its frame
        assert calls == [wire.HEADER.size]

    @pytest.mark.parametrize("kind,flags,reserved", [
        (0, 0, 0), (6, 0, 0), (255, 0, 0),  # unknown kinds
        (1, 1, 0), (1, 0, 7),               # reserved bits set
    ])
    def test_malformed_headers_are_typed_errors(self, kind, flags, reserved):
        header = wire.HEADER.pack(kind, flags, reserved, 0, 1)
        with pytest.raises(ProtocolError):
            wire.parse_header(header, wire.MAX_FRAME_BYTES)

    @given(payload=st.binary(min_size=0, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_query_codec_never_crashes_on_garbage(self, payload):
        view = memoryview(payload)
        for decoder in (wire.decode_query_request, wire.decode_query_result,
                        wire.decode_error):
            try:
                decoder(view)
            except ProtocolError:
                pass

    @given(garbage=st.binary(min_size=1, max_size=120))
    @settings(max_examples=20, deadline=None)
    def test_garbage_binary_frames_never_crash_a_live_server(
        self, server, garbage
    ):
        """Post-negotiation garbage: error frame or clean disconnect."""
        with socket.create_connection(server.address, timeout=10.0) as sock:
            sock.sendall(bytes([wire.MAGIC, wire.VERSION]))
            reader = sock.makefile("rb")
            assert reader.read(1)[0] == wire.ACK
            sock.sendall(garbage)
            sock.shutdown(socket.SHUT_WR)
            leftover = reader.read()  # everything until the server hangs up
        stream = io.BytesIO(leftover)
        while True:  # whatever came back must be well-formed frames
            frame = wire.read_frame(stream.read)
            if frame is None:
                break
            kind, _, payload = frame
            if kind == wire.KIND_ERROR:
                error = wire.decode_error(payload)
                assert error["type"].endswith("Error")
        # Whatever happened, the server still serves.
        with Client(*server.address, protocol="binary") as client:
            assert client.ping()

    def test_version_mismatch_is_nakked_on_the_wire(self, server):
        with socket.create_connection(server.address, timeout=10.0) as sock:
            sock.sendall(bytes([wire.MAGIC, wire.VERSION + 1]))
            reader = sock.makefile("rb")
            assert reader.read(1)[0] == wire.NAK
            assert reader.read() == b""  # and the server hangs up

    def test_client_raises_protocol_error_on_nak(self):
        """A NAKking server is a permanent error, not a retry loop."""
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(10.0)

        def nak_once():
            conn, _ = listener.accept()
            with conn:
                conn.recv(2)
                conn.sendall(bytes([wire.NAK]))

        thread = threading.Thread(target=nak_once, daemon=True)
        thread.start()
        try:
            with pytest.raises(ProtocolError, match="declined binary protocol"):
                BinaryTcpTransport(*listener.getsockname(), timeout=10.0)
        finally:
            thread.join(timeout=10.0)
            listener.close()


# ---------------------------------------------------------------------------
# Differential op parity: JSON and binary answers must be identical
# ---------------------------------------------------------------------------


class TestOpParity:
    def test_ping_and_tables_are_exactly_equal(self, server):
        with WireDifferential(server) as diff:
            assert diff.assert_identical("ping") is True
            tables = diff.assert_identical("tables")
        assert {"t", "u"} <= set(tables)
        assert tables["t"]["shape"] == [64, 96]

    def test_query_distances_are_bit_identical(self, server):
        with WireDifferential(server) as diff:
            results = diff.assert_identical("query", PARITY_QUERIES)
        assert len(results) == len(PARITY_QUERIES)
        assert all(math.isfinite(r.distance) for r in results)
        # Every concrete strategy took part, so the parity covered the
        # grid, compound, and disjoint encode/decode paths.
        assert {r.strategy for r in results} >= {"grid", "compound", "disjoint"}

    def test_single_query_matches_batch_member(self, server):
        """One query alone equals its answer inside a batch, cross-protocol."""
        with WireDifferential(server) as diff:
            batch = diff.assert_identical("query", PARITY_QUERIES)
            solo = diff.assert_identical("query", [PARITY_QUERIES[0]])
        assert solo[0] == batch[0]

    def test_timing_payloads_are_structurally_equal(self, server):
        with WireDifferential(server) as diff:
            # Warm every op counter through both protocols first, so the
            # second protocol's snapshot cannot carry a counter key the
            # first protocol's snapshot had not seen yet.
            diff.call("query", PARITY_QUERIES)
            for op in ("health", "stats", "telemetry"):
                diff.call(op)
            for op in ("health", "stats", "telemetry"):
                diff.assert_identical(op, structural=True)

    def test_trace_spans_agree_across_protocols(self, server):
        with WireDifferential(server) as diff:
            diff.call("query", [PARITY_QUERIES[0]])
            shapes = {}
            for protocol, client in diff.clients.items():
                spans = client.trace(client.last_trace_id)
                assert spans, f"no server spans over {protocol!r}"
                # Ids and timings legitimately differ per trace; the
                # span *names* and attribute keys must not.
                shapes[protocol] = [
                    (span["name"], sorted(span["attrs"])) for span in spans
                ]
            reference = next(iter(shapes.values()))
            assert all(shape == reference for shape in shapes.values())

    def test_update_summaries_and_after_queries_agree(self, engine, server):
        # Twin tables with identical content, one per protocol, so each
        # client applies the *same* deltas to its own copy and the
        # post-update answers must coincide bit for bit.
        port = server.address[1]
        base = np.abs(np.random.default_rng(21).normal(loc=2.0, size=(32, 32)))
        deltas = [(0, 0, 1.5), (3, 4, -0.25), (15, 15, 0.125)]
        probe = [(None, (0, 0, 16, 16), (16, 16, 16, 16), "disjoint")]
        with WireDifferential(server) as diff:
            summaries, answers = {}, {}
            for protocol, client in diff.clients.items():
                table = f"tw_{protocol}_{port}"
                engine.register_array(table, base.copy())
                summaries[protocol] = client.update(
                    table, deltas, batch_id=f"parity-{port}"
                )
                answers[protocol] = client.query(
                    [(table, *q[1:]) for q in probe]
                )
        reference = next(iter(summaries))
        assert summaries[reference]["applied"] is True
        for protocol in summaries:
            assert summaries[protocol] == summaries[reference]
            assert answers[protocol] == answers[reference]

    def test_server_errors_revive_identically(self, server):
        with WireDifferential(server) as diff:
            raised = {}
            for protocol, client in diff.clients.items():
                with pytest.raises(Exception) as info:
                    client.query([("ghost", (0, 0, 8, 8), (8, 8, 8, 8))])
                raised[protocol] = (type(info.value).__name__, str(info.value))
            reference = next(iter(raised.values()))
            assert all(item == reference for item in raised.values())
        assert reference[0].endswith("Error")

    def test_structure_normalizer_spots_shape_drift(self):
        """The comparator itself: equal shapes pass, drifted shapes fail."""
        a = {"count": 3, "latency": 0.25, "ok": True, "ops": ["ping"]}
        b = {"count": 9, "latency": 9.75, "ok": True, "ops": ["ping"]}
        assert structure(a) == structure(b)
        assert structure(a) != structure({**a, "latency": "0.25"})  # retyped
        assert structure(a) != structure({k: v for k, v in a.items()
                                          if k != "latency"})       # dropped


# ---------------------------------------------------------------------------
# Pipelining: request ids pair responses, order does not (satellite 4)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pipeline_server():
    """A dedicated async server whose trace op sleeps per trace id.

    ``spans_for_trace`` is shadowed with a version that sleeps for
    ``_DELAYS[trace_id]`` before answering, so a pipelined batch of
    trace requests completes in an order the test controls — the only
    correct way to pair the responses is the echoed ``request_id``.
    """
    engine = SketchEngine(p=1.0, k=8, seed=4)
    engine.register_array("t", np.random.default_rng(10).normal(size=(32, 32)))
    delays: dict[str, float] = {}
    original = engine.tracer.spans_for_trace

    def slow_spans(trace_id: str):
        time.sleep(delays.get(str(trace_id), 0.0))
        return original(trace_id)

    engine.tracer.spans_for_trace = slow_spans
    with AsyncSketchServer(engine) as srv:
        srv.start()
        yield srv, delays


def pipelined_trace_frames(rids_to_tids: dict[int, str]) -> list[bytes]:
    return [
        wire.encode_frame(
            wire.KIND_JSON_REQUEST, rid,
            json.dumps({"op": "trace", "trace_id": tid}).encode(),
        )
        for rid, tid in rids_to_tids.items()
    ]


def pipelined_exchange(server, frames: list[bytes], count: int):
    """Send every frame at once; collect ``count`` responses in arrival order."""
    with socket.create_connection(server.address, timeout=30.0) as sock:
        sock.sendall(bytes([wire.MAGIC, wire.VERSION]))
        reader = sock.makefile("rb")
        assert reader.read(1)[0] == wire.ACK
        sock.sendall(b"".join(frames))
        responses = []
        for _ in range(count):
            frame = wire.read_frame(reader.read)
            assert frame is not None, "server hung up mid-pipeline"
            kind, rid, payload = frame
            responses.append((kind, rid, bytes(payload)))
        return responses


class TestPipelining:
    def test_slow_head_does_not_block_the_pipeline(self, pipeline_server):
        """The request sent *first* answers *last* — head-of-line
        blocking is gone, and ids still pair every response."""
        server, delays = pipeline_server
        delays.clear()
        delays.update({"tid-slow": 0.4, "tid-fast": 0.0})
        responses = pipelined_exchange(
            server,
            pipelined_trace_frames({11: "tid-slow", 22: "tid-fast"}),
            count=2,
        )
        assert [rid for _, rid, _ in responses] == [22, 11]
        for kind, rid, payload in responses:
            assert kind == wire.KIND_JSON_RESULT
            wanted = "tid-slow" if rid == 11 else "tid-fast"
            assert json.loads(payload)["trace_id"] == wanted

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_interleaved_responses_pair_by_request_id(
        self, pipeline_server, data
    ):
        server, delays = pipeline_server
        n = data.draw(st.integers(min_value=2, max_value=6), label="n")
        picked = data.draw(
            st.lists(st.sampled_from([0.0, 0.02, 0.05]), min_size=n, max_size=n),
            label="delays",
        )
        rids = data.draw(
            st.lists(st.integers(min_value=1, max_value=2**63 - 1),
                     min_size=n, max_size=n, unique=True),
            label="request_ids",
        )
        mapping = {rid: f"tid-{i}-{rid}" for i, rid in enumerate(rids)}
        delays.clear()
        delays.update({tid: picked[i] for i, tid in enumerate(mapping.values())})
        responses = pipelined_exchange(
            server, pipelined_trace_frames(mapping), count=n
        )
        # Every request answered exactly once, however completion was
        # ordered, and each response body belongs to its request id.
        assert sorted(rid for _, rid, _ in responses) == sorted(mapping)
        for kind, rid, payload in responses:
            assert kind == wire.KIND_JSON_RESULT
            assert json.loads(payload)["trace_id"] == mapping[rid]


# ---------------------------------------------------------------------------
# float32 sketch maps: half the memory, same guarantee band
# ---------------------------------------------------------------------------

CALIB_K = 64
CALIB_QUERIES = [
    ("c", (0, 0, 16, 16), (32, 32, 16, 16), "grid"),
    ("c", (0, 16, 16, 16), (48, 0, 16, 16), "disjoint"),
    ("c", (8, 8, 16, 16), (40, 40, 16, 16), "disjoint"),
]


def calibration_engine(map_dtype: str) -> SketchEngine:
    engine = SketchEngine(p=1.0, k=CALIB_K, seed=5, map_dtype=map_dtype)
    engine.register_array("c", np.abs(
        np.random.default_rng(12).normal(loc=3.0, size=(64, 64))
    ))
    return engine


class TestFloat32Calibration:
    def test_both_dtypes_estimate_inside_the_theoretical_band(self):
        """Seeded and deterministic: a regression check, not a gamble.

        ``theoretical_epsilon(64)`` is the k=64 guarantee band; both
        map dtypes must put every grid/disjoint estimate within it,
        which pins that float32 storage costs rounding noise, not
        calibration.
        """
        epsilon = theoretical_epsilon(CALIB_K)
        data = np.abs(np.random.default_rng(12).normal(loc=3.0, size=(64, 64)))
        for map_dtype in ("float32", "float64"):
            engine = calibration_engine(map_dtype)
            for query, result in zip(CALIB_QUERIES, engine.query(CALIB_QUERIES)):
                exact = exact_distance(data, query)
                assert exact > 0
                assert abs(result.distance - exact) <= epsilon * exact, (
                    f"{map_dtype} estimate {result.distance} outside the "
                    f"eps={epsilon:.3f} band of {exact} for {query}"
                )

    def test_float32_tracks_float64_to_rounding_noise(self):
        """float32 maps answer within ~1e-4 relative of float64 maps.

        The estimators accumulate in float64 either way; the only
        difference is the stored map precision (2^-24 per entry), so
        the relative gap must sit orders below the statistical
        epsilon — the dtype knob trades memory, never accuracy class.
        """
        f32 = calibration_engine("float32").query(CALIB_QUERIES)
        f64 = calibration_engine("float64").query(CALIB_QUERIES)
        for narrow, wide in zip(f32, f64):
            assert narrow.strategy == wide.strategy
            assert abs(narrow.distance - wide.distance) <= 1e-4 * wide.distance

    def test_map_dtype_is_validated_and_reported(self):
        engine = calibration_engine("float32")
        assert engine.tables()["c"]["map_dtype"] == "float32"
        assert calibration_engine("float64").tables()["c"]["map_dtype"] == "float64"
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            SketchEngine(k=8, map_dtype="float16")

    def test_served_answers_match_in_process_for_float32(self):
        """The whole stack end to end: float32 engine, binary wire."""
        engine = calibration_engine("float32")
        expected = engine.query(CALIB_QUERIES)
        with AsyncSketchServer(engine) as srv:
            srv.start()
            with Client(*srv.address, protocol="binary") as client:
                served = client.query(CALIB_QUERIES)
        assert served == expected
