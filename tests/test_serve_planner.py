"""Tests for the batched query planner (routing, grouping, exactness)."""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import estimate_distance_values
from repro.core.generator import SketchGenerator
from repro.core.pool import SketchPool
from repro.errors import ParameterError, QueryTimeoutError
from repro.serve.planner import QueryPlanner, QueryResult, RectQuery
from repro.table.tiles import TileSpec

TABLE_SHAPE = (64, 96)


@pytest.fixture(scope="module")
def pool():
    data = np.random.default_rng(11).normal(size=TABLE_SHAPE)
    return SketchPool(data, SketchGenerator(p=1.0, k=21, seed=3), min_exponent=2)


@pytest.fixture()
def planner(pool):
    return QueryPlanner({"t": pool})


class TestRectQuery:
    def test_parse_forms_agree(self):
        from_tuple = RectQuery.parse(("t", (0, 0, 8, 8), (8, 8, 8, 8)))
        from_dict = RectQuery.parse(
            {"table": "t", "a": [0, 0, 8, 8], "b": [8, 8, 8, 8]}
        )
        from_specs = RectQuery("t", TileSpec(0, 0, 8, 8), TileSpec(8, 8, 8, 8))
        assert from_tuple == from_dict == from_specs

    def test_wire_round_trip(self):
        query = RectQuery("t", TileSpec(1, 2, 8, 16), TileSpec(3, 4, 8, 16), "compound")
        assert RectQuery.parse(query.to_wire()) == query

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ParameterError):
            RectQuery("t", TileSpec(0, 0, 8, 8), TileSpec(0, 0, 8, 16))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParameterError):
            RectQuery("t", TileSpec(0, 0, 8, 8), TileSpec(0, 0, 8, 8), "psychic")

    def test_bad_wire_forms_rejected(self):
        with pytest.raises(ParameterError):
            RectQuery.parse({"table": "t", "a": [0, 0, 8, 8]})  # missing b
        with pytest.raises(ParameterError):
            RectQuery.parse({"table": "t", "a": [0, 0, 8, 8], "b": [0, 0, 8, 8],
                             "extra": 1})
        with pytest.raises(ParameterError):
            RectQuery.parse(("t", (0, 0, 8), (0, 0, 8, 8)))
        with pytest.raises(ParameterError):
            RectQuery.parse(42)

    def test_result_wire_round_trip(self):
        result = QueryResult(3.5, "grid")
        assert QueryResult.parse(result.to_wire()) == result


class TestRouting:
    def test_auto_prefers_grid_for_dyadic(self, pool, planner):
        query = RectQuery("t", TileSpec(0, 0, 16, 32), TileSpec(4, 4, 16, 32))
        assert planner.resolve_strategy(pool, query) == "grid"

    def test_auto_falls_back_to_compound(self, pool, planner):
        query = RectQuery("t", TileSpec(0, 0, 12, 32), TileSpec(4, 4, 12, 32))
        assert planner.resolve_strategy(pool, query) == "compound"

    def test_grid_rejects_non_dyadic(self, pool, planner):
        query = RectQuery("t", TileSpec(0, 0, 12, 16), TileSpec(0, 0, 12, 16), "grid")
        with pytest.raises(ParameterError):
            planner.resolve_strategy(pool, query)

    def test_disjoint_needs_unit_multiple(self, pool, planner):
        query = RectQuery("t", TileSpec(0, 0, 10, 16), TileSpec(0, 0, 10, 16),
                          "disjoint")
        with pytest.raises(ParameterError):
            planner.resolve_strategy(pool, query)

    def test_unknown_table_rejected(self, planner):
        with pytest.raises(ParameterError, match="unknown table"):
            planner.execute([RectQuery("x", TileSpec(0, 0, 8, 8), TileSpec(0, 0, 8, 8))])

    def test_too_small_tile_rejected(self, planner):
        with pytest.raises(ParameterError, match="smaller than the pooled minimum"):
            planner.execute([RectQuery("t", TileSpec(0, 0, 2, 8), TileSpec(0, 0, 2, 8))])

    def test_out_of_bounds_rejected(self, planner):
        with pytest.raises(Exception):
            planner.execute(
                [RectQuery("t", TileSpec(60, 90, 16, 16), TileSpec(0, 0, 16, 16))]
            )


class TestGrouping:
    def test_same_size_queries_share_a_group(self, planner):
        queries = [
            RectQuery("t", TileSpec(r, c, 8, 8), TileSpec(r + 8, c + 8, 8, 8))
            for r, c in [(0, 0), (4, 4), (8, 16), (16, 32)]
        ]
        groups = planner.plan(queries)
        assert len(groups) == 1
        assert groups[0].strategy == "grid"
        assert groups[0].indices == (0, 1, 2, 3)

    def test_mixed_batch_groups_by_strategy_and_size(self, planner):
        queries = [
            RectQuery("t", TileSpec(0, 0, 8, 8), TileSpec(8, 8, 8, 8)),          # grid 8x8
            RectQuery("t", TileSpec(0, 0, 12, 12), TileSpec(8, 8, 12, 12)),      # compound
            RectQuery("t", TileSpec(4, 4, 8, 8), TileSpec(16, 16, 8, 8)),        # grid 8x8
            RectQuery("t", TileSpec(0, 0, 16, 16), TileSpec(8, 8, 16, 16)),      # grid 16x16
            RectQuery("t", TileSpec(0, 0, 12, 12), TileSpec(16, 16, 12, 12)),    # compound
        ]
        groups = planner.plan(queries)
        by_key = {(g.strategy, g.size_key): g.indices for g in groups}
        assert by_key[("grid", (3, 3))] == (0, 2)
        assert by_key[("grid", (4, 4))] == (3,)
        assert by_key[("compound", (3, 3))] == (1, 4)

    def test_one_estimator_call_per_group(self, pool, planner):
        queries = [
            RectQuery("t", TileSpec(i, i, 8, 8), TileSpec(i + 8, i + 8, 8, 8))
            for i in range(10)
        ]
        planner.stats.reset()
        planner.execute(queries)
        assert planner.stats.estimator_calls == 1
        assert planner.stats.comparisons == 10
        assert planner.stats.grid_queries == 10


class TestExecution:
    def test_results_in_submission_order(self, pool, planner):
        queries = [
            RectQuery("t", TileSpec(0, 0, 12, 12), TileSpec(8, 8, 12, 12)),
            RectQuery("t", TileSpec(0, 0, 8, 8), TileSpec(8, 8, 8, 8)),
            RectQuery("t", TileSpec(0, 0, 16, 16), TileSpec(32, 32, 16, 16), "disjoint"),
        ]
        results = planner.execute(queries)
        assert [r.strategy for r in results] == ["compound", "grid", "disjoint"]

    def test_timeout_raises(self, planner):
        queries = [RectQuery("t", TileSpec(0, 0, 8, 8), TileSpec(8, 8, 8, 8))]
        with pytest.raises(QueryTimeoutError):
            planner.execute(queries, deadline=time.monotonic() - 1.0)

    def test_self_distance_is_zero(self, planner):
        spec = TileSpec(4, 4, 8, 8)
        result = planner.execute([RectQuery("t", spec, spec)])[0]
        assert result.distance == 0.0


def _spec_strategy():
    """Random in-bounds rectangles with serve-compatible shapes."""
    return st.builds(
        lambda er, ec, rf, cf: (1 << er, 1 << ec, rf, cf),
        er=st.integers(min_value=2, max_value=5),
        ec=st.integers(min_value=2, max_value=5),
        rf=st.floats(min_value=0.0, max_value=1.0),
        cf=st.floats(min_value=0.0, max_value=1.0),
    )


class TestBatchedMatchesScalar:
    """The headline property: batched answers == one-at-a-time pool API."""

    @staticmethod
    def _place(pool, height, width, row_frac, col_frac):
        row = int(row_frac * (pool.data.shape[0] - height))
        col = int(col_frac * (pool.data.shape[1] - width))
        return TileSpec(row, col, height, width)

    @staticmethod
    def _scalar_answer(pool, query, strategy):
        if strategy == "compound":
            sketch_a = pool.sketch_for(query.a)
            sketch_b = pool.sketch_for(query.b)
        else:  # grid and disjoint both reduce to the disjoint composition
            sketch_a = pool.disjoint_sketch_for(query.a)
            sketch_b = pool.disjoint_sketch_for(query.b)
        return estimate_distance_values(
            sketch_a.values - sketch_b.values, pool.generator.p
        )

    @given(
        shapes=st.lists(_spec_strategy(), min_size=1, max_size=12),
        strategy=st.sampled_from(["grid", "compound", "disjoint"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched_equals_scalar(self, pool, shapes, strategy, seed):
        rng = np.random.default_rng(seed)
        planner = QueryPlanner({"t": pool})
        queries = []
        for height, width, row_frac, col_frac in shapes:
            if strategy == "compound":
                # widen to a non-dyadic size when room allows, so the
                # compound path exercises genuinely overlapping corners
                height = min(height + int(rng.integers(0, height)),
                             pool.data.shape[0])
                width = min(width + int(rng.integers(0, width)),
                            pool.data.shape[1])
            spec_a = self._place(pool, height, width, row_frac, col_frac)
            spec_b = self._place(pool, height, width, 1.0 - row_frac, 1.0 - col_frac)
            queries.append(RectQuery("t", spec_a, spec_b, strategy))
        batched = planner.execute(queries)
        for query, result in zip(queries, batched):
            assert result.strategy == strategy
            expected = self._scalar_answer(pool, query, strategy)
            assert result.distance == expected  # bit-exact, not approx

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_auto_routing_matches_scalar(self, pool, seed):
        rng = np.random.default_rng(seed)
        planner = QueryPlanner({"t": pool})
        queries = []
        for _ in range(8):
            height = int(rng.integers(4, 33))
            width = int(rng.integers(4, 49))
            row = int(rng.integers(0, pool.data.shape[0] - height + 1))
            col = int(rng.integers(0, pool.data.shape[1] - width + 1))
            row_b = int(rng.integers(0, pool.data.shape[0] - height + 1))
            col_b = int(rng.integers(0, pool.data.shape[1] - width + 1))
            queries.append(RectQuery(
                "t", TileSpec(row, col, height, width),
                TileSpec(row_b, col_b, height, width),
            ))
        results = planner.execute(queries)
        for query, result in zip(queries, results):
            dyadic = (query.a.height & (query.a.height - 1) == 0
                      and query.a.width & (query.a.width - 1) == 0)
            assert result.strategy == ("grid" if dyadic else "compound")
            expected = self._scalar_answer(pool, query, result.strategy)
            assert result.distance == expected
