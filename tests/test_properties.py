"""Cross-cutting property-based tests (hypothesis) on core invariants.

Runs under the ``deterministic`` hypothesis profile registered in
``conftest.py`` (``derandomize=True``), so tier-1 explores the same
example set every run; set ``HYPOTHESIS_PROFILE=explore`` to
re-randomize locally when hunting for new counterexamples.  Array
inputs are derived from hypothesis-drawn *seeds* via
``np.random.default_rng``, never from ambient global randomness.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SketchGenerator, estimate_distance, lp_norm
from repro.core.sketch import mean_sketch
from repro.metrics import linear_sum_assignment
from repro.stream import StreamingSketch


def array_from_seed(seed, shape=(4, 4)):
    return np.random.default_rng(seed).normal(size=shape)


class TestLpNormProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        p_small=st.floats(min_value=0.2, max_value=1.9),
        gap=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_norm_nonincreasing_in_p(self, seed, p_small, gap):
        """||x||_p >= ||x||_q whenever p <= q (power-mean inequality)."""
        p_large = min(p_small + gap, 2.0)
        x = array_from_seed(seed, shape=12)
        assert lp_norm(x, p_small) >= lp_norm(x, p_large) - 1e-9

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_norm_zero_iff_zero_vector(self, seed):
        x = array_from_seed(seed, shape=6)
        assert lp_norm(x, 1.3) > 0
        assert lp_norm(np.zeros(6), 1.3) == 0.0


class TestSketchLinearity:
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        a=st.floats(min_value=-5, max_value=5),
        b=st.floats(min_value=-5, max_value=5),
        p=st.sampled_from([0.5, 1.0, 1.5, 2.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_linear_combination(self, seed, a, b, p):
        gen = SketchGenerator(p=p, k=8, seed=0)
        x = array_from_seed(seed)
        y = array_from_seed(seed + 1)
        combined = gen.sketch(a * x + b * y)
        manual = a * gen.sketch(x).values + b * gen.sketch(y).values
        np.testing.assert_allclose(combined.values, manual, atol=1e-8)

    @given(
        n=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_mean_sketch_is_sketch_of_mean(self, n, seed):
        gen = SketchGenerator(p=1.0, k=8, seed=1)
        tiles = [array_from_seed(seed + i) for i in range(n)]
        averaged = mean_sketch([gen.sketch(t) for t in tiles])
        direct = gen.sketch(np.mean(tiles, axis=0))
        np.testing.assert_allclose(averaged.values, direct.values, atol=1e-8)


class TestEstimatorProperties:
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_scale_equivariance(self, seed, scale):
        gen = SketchGenerator(p=0.8, k=16, seed=2)
        x, y = array_from_seed(seed), array_from_seed(seed + 7)
        base = estimate_distance(gen.sketch(x), gen.sketch(y))
        scaled = estimate_distance(gen.sketch(scale * x), gen.sketch(scale * y))
        assert scaled == pytest.approx(scale * base, rel=1e-9, abs=1e-12)

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, seed):
        gen = SketchGenerator(p=1.0, k=16, seed=3)
        x, y = array_from_seed(seed), array_from_seed(seed + 13)
        sx, sy = gen.sketch(x), gen.sketch(y)
        assert estimate_distance(sx, sy) == estimate_distance(sy, sx)

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=30, deadline=None)
    def test_identity_of_indiscernibles_in_sketch_space(self, seed):
        gen = SketchGenerator(p=1.0, k=16, seed=4)
        x = array_from_seed(seed)
        assert estimate_distance(gen.sketch(x), gen.sketch(x.copy())) == 0.0


class TestStreamingProperties:
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
                st.floats(min_value=-10, max_value=10, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        ),
        order_seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariance(self, updates, order_seed):
        a = StreamingSketch(1.0, 8, (4, 4), seed=5)
        for row, col, delta in updates:
            a.update(row, col, delta)
        shuffled = list(updates)
        np.random.default_rng(order_seed).shuffle(shuffled)
        b = StreamingSketch(1.0, 8, (4, 4), seed=5)
        for row, col, delta in shuffled:
            b.update(row, col, delta)
        np.testing.assert_allclose(a.values, b.values, atol=1e-9)

    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
                st.floats(min_value=-5, max_value=5, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_sketch_matches_materialised_table(self, updates):
        sketch = StreamingSketch(1.0, 8, (3, 3), seed=6)
        table = np.zeros((3, 3))
        for row, col, delta in updates:
            sketch.update(row, col, delta)
            table[row, col] += delta
        reference = StreamingSketch.from_array(table, p=1.0, k=8, seed=6)
        np.testing.assert_allclose(sketch.values, reference.values, atol=1e-9)


class TestRealFftProperties:
    @given(n=st.integers(min_value=1, max_value=128))
    @settings(max_examples=40, deadline=None)
    def test_rfft_matches_full_fft(self, n):
        from repro.fourier import fft, rfft

        x = np.random.default_rng(n).normal(size=n)
        np.testing.assert_allclose(rfft(x), fft(x)[: n // 2 + 1], atol=1e-8)

    @given(n=st.integers(min_value=1, max_value=128))
    @settings(max_examples=40, deadline=None)
    def test_irfft_round_trip(self, n):
        from repro.fourier import irfft, rfft

        x = np.random.default_rng(n + 7000).normal(size=n)
        np.testing.assert_allclose(irfft(rfft(x), n), x, atol=1e-8)


class TestAssignmentProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_worse_than_random_permutation(self, seed, n):
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0, 10, size=(n, n))
        rows, cols = linear_sum_assignment(cost)
        optimal = cost[rows, cols].sum()
        permutation = rng.permutation(n)
        random_total = cost[np.arange(n), permutation].sum()
        assert optimal <= random_total + 1e-9
