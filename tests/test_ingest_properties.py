"""Property tests: live ingestion is bit-identical to bulk ingestion.

The streaming sketch accumulates every update into exact (Shewchuk)
floating-point expansions, so the rendered sketch depends only on the
*multiset* of per-cell contributions — not their order, batching, or
merge grouping.  Hypothesis drives that claim across random delta
streams, permutations, batch splits, and :class:`WindowedTable`
arrive/compact/retire schedules, always comparing against one bulk
:meth:`StreamingSketch.from_array` of the final table.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingest import WindowedTable
from repro.stream import StreamingSketch

_P = 1.0
_K = 6
_SHAPE = (5, 7)


def bulk(array: np.ndarray, shape=_SHAPE) -> StreamingSketch:
    sketch = StreamingSketch(_P, _K, shape, seed=3, stream=1)
    rows, cols = np.nonzero(array)
    sketch.update_many(rows, cols, array[rows, cols])
    return sketch


@st.composite
def delta_streams(draw):
    """A stream of cell deltas where each touched cell is hit once.

    Single-touch streams are the regime where replay order provably
    cannot matter even in floating point: every partial sum holds one
    exact term per cell.  Multi-touch cells are covered separately via
    exact-cancelling pairs (the windowed retirement pattern).
    """
    n_cells = _SHAPE[0] * _SHAPE[1]
    indices = draw(st.lists(st.integers(0, n_cells - 1), min_size=1,
                            max_size=12, unique=True))
    values = draw(st.lists(
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False,
                  width=64).filter(lambda v: v != 0.0),
        min_size=len(indices), max_size=len(indices),
    ))
    return [(index // _SHAPE[1], index % _SHAPE[1], value)
            for index, value in zip(indices, values)]


@st.composite
def permuted(draw, items):
    order = draw(st.permutations(range(len(items))))
    return [items[i] for i in order]


class TestReplayOrderInvariance:
    @given(st.data())
    @settings(max_examples=40)
    def test_any_permutation_matches_bulk_ingest(self, data):
        stream = data.draw(delta_streams())
        table = np.zeros(_SHAPE)
        for row, col, value in stream:
            table[row, col] += value
        reference = bulk(table).values

        shuffled = data.draw(permuted(stream))
        replayed = StreamingSketch(_P, _K, _SHAPE, seed=3, stream=1)
        for row, col, value in shuffled:
            replayed.update(row, col, value)
        np.testing.assert_array_equal(replayed.values, reference)

    @given(st.data())
    @settings(max_examples=40)
    def test_any_batching_and_merge_grouping_matches_bulk(self, data):
        stream = data.draw(permuted(data.draw(delta_streams())))
        table = np.zeros(_SHAPE)
        for row, col, value in stream:
            table[row, col] += value
        reference = bulk(table).values

        # Split the stream at arbitrary points into per-batch sketches,
        # then merge the batch sketches in arbitrary order.
        cuts = sorted(data.draw(st.lists(
            st.integers(1, max(1, len(stream) - 1)), max_size=3, unique=True,
        ))) if len(stream) > 1 else []
        pieces = []
        start = 0
        for cut in cuts + [len(stream)]:
            piece = StreamingSketch(_P, _K, _SHAPE, seed=3, stream=1)
            for row, col, value in stream[start:cut]:
                piece.update(row, col, value)
            pieces.append(piece)
            start = cut
        merged = StreamingSketch(_P, _K, _SHAPE, seed=3, stream=1)
        for piece in data.draw(permuted(pieces)):
            merged = merged.merged(piece)
        np.testing.assert_array_equal(merged.values, reference)

    @given(st.data())
    @settings(max_examples=25)
    def test_exact_cancelling_pairs_vanish(self, data):
        """A delta and its float negation cancel to the empty sketch."""
        stream = data.draw(delta_streams())
        sketch = StreamingSketch(_P, _K, _SHAPE, seed=3, stream=1)
        forward = stream + [(row, col, -value) for row, col, value in stream]
        for row, col, value in data.draw(permuted(forward)):
            sketch.update(row, col, value)
        np.testing.assert_array_equal(sketch.values, np.zeros(_K))


@st.composite
def window_schedules(draw):
    """An interleaved arrive/compact/retire schedule over a small window."""
    n_days = draw(st.integers(2, 6))
    compact_after = draw(st.sets(st.integers(0, n_days - 1), max_size=3))
    return n_days, compact_after


class TestWindowedTableInvariance:
    @given(window_schedules(), st.integers(0, 2**16 - 1))
    @settings(max_examples=20, deadline=None)
    def test_rolling_window_matches_bulk_of_materialized(
        self, schedule, day_seed
    ):
        n_days, compact_after = schedule
        window_days = 3
        table = WindowedTable(
            "w", height=4, day_width=3, window_days=window_days,
            p=_P, k=_K, seed=5, stream=0,
        )
        rng = np.random.default_rng(day_seed)
        for day in range(n_days):
            # Sparse day traffic, some all-zero days included.
            partition = rng.normal(size=(4, 3))
            partition[rng.random(size=(4, 3)) < 0.4] = 0.0
            for retired in table.days_to_retire(day):
                table.retire(retired)
            table.arrive(day, partition)
            if day in compact_after:
                table.compact()
            reference = StreamingSketch.from_array(
                table.materialized(), _P, _K, seed=5, stream=0
            )
            np.testing.assert_array_equal(
                table.sketch.values, reference.values
            )

    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=10, deadline=None)
    def test_retire_after_compact_cancels_exactly(self, day_seed):
        table = WindowedTable("w", height=3, day_width=2, window_days=4,
                              p=_P, k=_K, seed=7)
        rng = np.random.default_rng(day_seed)
        days = {day: rng.normal(size=(3, 2)) for day in range(3)}
        for day, partition in days.items():
            table.arrive(day, partition)
        table.compact()
        table.retire(0)  # cancelled inside the base sketch
        reference = StreamingSketch.from_array(
            table.materialized(), _P, _K, seed=7, stream=0
        )
        np.testing.assert_array_equal(table.sketch.values, reference.values)
