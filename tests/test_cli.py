"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.__main__ import main
from repro.core.io import load_sketch_matrix


class TestInfo:
    def test_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "repro.core" in out


class TestSketchCommand:
    def test_npy_input(self, tmp_path, capsys):
        table = np.random.default_rng(0).normal(size=(32, 32))
        table_path = tmp_path / "table.npy"
        np.save(table_path, table)
        out_path = tmp_path / "sketches.npz"
        code = main(
            [
                "sketch",
                str(table_path),
                "--out",
                str(out_path),
                "--p",
                "1.0",
                "--k",
                "8",
                "--tile-rows",
                "16",
                "--tile-cols",
                "16",
            ]
        )
        assert code == 0
        matrix, key = load_sketch_matrix(out_path)
        assert matrix.shape == (4, 8)
        assert key.p == 1.0
        assert "sketched 4 tiles" in capsys.readouterr().out

    def test_csv_input(self, tmp_path):
        values = np.arange(64.0).reshape(8, 8)
        table_path = tmp_path / "table.csv"
        table_path.write_text(
            "\n".join(",".join(str(v) for v in row) for row in values) + "\n"
        )
        out_path = tmp_path / "s.npz"
        code = main(
            ["sketch", str(table_path), "--out", str(out_path),
             "--tile-rows", "4", "--tile-cols", "4", "--k", "4"]
        )
        assert code == 0
        matrix, _key = load_sketch_matrix(out_path)
        assert matrix.shape == (4, 4)


class TestFiguresCommand:
    def test_subset_run(self, tmp_path):
        code = main(["figures", "--only", "figure5", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "figure5.txt").exists()
        assert (tmp_path / "index.txt").exists()

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
