"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.__main__ import main
from repro.core.io import load_sketch_matrix


class TestInfo:
    def test_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "repro.core" in out


class TestSketchCommand:
    def test_npy_input(self, tmp_path, capsys):
        table = np.random.default_rng(0).normal(size=(32, 32))
        table_path = tmp_path / "table.npy"
        np.save(table_path, table)
        out_path = tmp_path / "sketches.npz"
        code = main(
            [
                "sketch",
                str(table_path),
                "--out",
                str(out_path),
                "--p",
                "1.0",
                "--k",
                "8",
                "--tile-rows",
                "16",
                "--tile-cols",
                "16",
            ]
        )
        assert code == 0
        matrix, key = load_sketch_matrix(out_path)
        assert matrix.shape == (4, 8)
        assert key.p == 1.0
        assert "sketched 4 tiles" in capsys.readouterr().out

    def test_csv_input(self, tmp_path):
        values = np.arange(64.0).reshape(8, 8)
        table_path = tmp_path / "table.csv"
        table_path.write_text(
            "\n".join(",".join(str(v) for v in row) for row in values) + "\n"
        )
        out_path = tmp_path / "s.npz"
        code = main(
            ["sketch", str(table_path), "--out", str(out_path),
             "--tile-rows", "4", "--tile-cols", "4", "--k", "4"]
        )
        assert code == 0
        matrix, _key = load_sketch_matrix(out_path)
        assert matrix.shape == (4, 4)


class TestFiguresCommand:
    def test_subset_run(self, tmp_path):
        code = main(["figures", "--only", "figure5", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "figure5.txt").exists()
        assert (tmp_path / "index.txt").exists()

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestPoolCommand:
    def test_builds_and_saves_pool(self, tmp_path, capsys):
        table = np.random.default_rng(3).normal(size=(32, 32))
        table_path = tmp_path / "table.npy"
        np.save(table_path, table)
        out_path = tmp_path / "pool.npz"
        code = main(
            ["pool", str(table_path), "--out", str(out_path),
             "--k", "8", "--max-exponent", "4", "--workers", "2"]
        )
        assert code == 0
        assert "pooled" in capsys.readouterr().out

        from repro.core.io import load_pool

        pool = load_pool(out_path)
        # exponents 3..4 on both axes, four streams each
        assert len(pool._maps) == 2 * 2 * 4
        assert pool.generator.k == 8

    def test_store_file_input(self, tmp_path):
        from repro.table.store import write_table

        table = np.random.default_rng(4).normal(size=(32, 32))
        table_path = tmp_path / "table.tbl"
        write_table(table_path, table, chunk_shape=(16, 16))
        out_path = tmp_path / "pool.npz"
        code = main(
            ["pool", str(table_path), "--out", str(out_path),
             "--k", "4", "--streams", "1", "--max-exponent", "3"]
        )
        assert code == 0
        from repro.core.io import load_pool

        pool = load_pool(out_path)
        np.testing.assert_allclose(pool.data, table)
        assert len(pool._maps) == 1  # one size, one stream


class TestQueryCommand:
    @pytest.fixture()
    def live_server(self):
        from repro.serve import SketchEngine, SketchServer

        engine = SketchEngine(p=1.0, k=8, seed=1)
        engine.register_array("t", np.random.default_rng(5).normal(size=(32, 32)))
        with SketchServer(engine) as server:
            server.start()
            yield server

    def test_ping_tables_stats(self, live_server, capsys):
        host, port = live_server.address
        base = ["query", "--host", host, "--port", str(port)]
        assert main(base + ["--ping"]) == 0
        assert "pong" in capsys.readouterr().out
        assert main(base + ["--tables"]) == 0
        assert '"t"' in capsys.readouterr().out
        assert main(base + ["--stats"]) == 0
        assert '"queries"' in capsys.readouterr().out

    def test_distance_queries(self, live_server, capsys):
        host, port = live_server.address
        code = main(
            ["query", "--host", host, "--port", str(port),
             "t:0,0,8,8:16,16,8,8", "t:0,0,12,12:8,8,12,12:compound"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("grid")
        assert lines[1].endswith("compound")

    def test_bad_query_spec_exits(self, live_server):
        host, port = live_server.address
        with pytest.raises(SystemExit):
            main(["query", "--host", host, "--port", str(port), "nonsense"])

    def test_no_action_exits(self, live_server):
        host, port = live_server.address
        with pytest.raises(SystemExit):
            main(["query", "--host", host, "--port", str(port)])


class TestStatsCommand:
    @pytest.fixture()
    def live_server(self):
        from repro.serve import Client, SketchEngine, SketchServer

        engine = SketchEngine(p=1.0, k=8, seed=1)
        engine.register_array("t", np.random.default_rng(5).normal(size=(32, 32)))
        with SketchServer(engine) as server:
            server.start()
            host, port = server.address
            with Client(host, port) as client:
                client.query([("t", (0, 0, 8, 8), (16, 16, 8, 8))])
            yield server

    def test_summary_output(self, live_server, capsys):
        host, port = live_server.address
        assert main(["stats", "--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "requests:" in out
        assert "table t:" in out
        assert "budget:" in out

    def test_json_output(self, live_server, capsys):
        import json

        host, port = live_server.address
        assert main(["stats", "--host", host, "--port", str(port), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["requests"]["query"] == 1
        assert "metrics" in snapshot

    def test_prometheus_output_lints_clean(self, live_server, capsys):
        from repro.obs.export import lint_prometheus

        host, port = live_server.address
        code = main(["stats", "--host", host, "--port", str(port), "--prometheus"])
        assert code == 0
        text = capsys.readouterr().out
        assert lint_prometheus(text) == []
        assert "pool_map_builds_total" in text
        assert "server_request_seconds_bucket" in text

    def test_json_and_prometheus_are_exclusive(self, live_server):
        host, port = live_server.address
        with pytest.raises(SystemExit):
            main(["stats", "--host", host, "--port", str(port),
                  "--json", "--prometheus"])


class TestServeCommand:
    def test_bad_table_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["serve", "--table", "no-equals-sign"])

    def test_log_level_flag_accepted(self, tmp_path):
        # parse-only check: a bad level is rejected by argparse before
        # any server starts
        with pytest.raises(SystemExit):
            main(["serve", "--table", "t=x.npy", "--log-level", "loud"])

    def test_info_lists_serve_subsystem(self, capsys):
        assert main(["info"]) == 0
        assert "repro.serve" in capsys.readouterr().out
