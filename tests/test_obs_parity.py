"""Observability parity: the async server must account like the threaded one.

The asyncio server reuses the threaded server's dispatch
(``_handle_request``), admission controller, and logging helper — so an
identical workload against either implementation must leave identical
*observability state* behind: the same per-op request/error counts, the
same metric families with the same series, the same span names on a
trace, and the same ``trace_id`` in the slow-query log on both the JSON
and binary paths.  This differential test pins that; any future op or
metric added to one server but not the other fails here first.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.obs.export import StructuredLogger
from repro.serve import AsyncSketchServer, Client, SketchEngine, SketchServer

WORKLOAD_QUERIES = [
    ("t", (0, 0, 8, 8), (8, 64, 8, 8), "grid"),
    ("t", (0, 0, 12, 20), (16, 40, 12, 20), "compound"),
    ("t", (8, 0, 16, 16), (32, 64, 16, 16), "disjoint"),
    ("t", (0, 16, 8, 16), (40, 48, 8, 16)),
]


def _make_engine() -> SketchEngine:
    engine = SketchEngine(p=1.0, k=16, seed=2)
    engine.register_array("t", np.random.default_rng(8).normal(size=(64, 96)))
    return engine


def _run_workload(server_type, protocol: str):
    """One identical workload; returns the engine's observability state."""
    engine = _make_engine()
    with server_type(engine, port=0) as server:
        server.start()
        with Client(*server.address, protocol=protocol) as client:
            client.ping()
            client.query(WORKLOAD_QUERIES)
            client.explain(WORKLOAD_QUERIES)
            with pytest.raises(ParameterError):
                client.query([("t", (0, 0, 3, 3), (8, 8, 3, 3))])
            client.query(WORKLOAD_QUERIES[:1])
            trace_id = client.last_trace_id
            spans = client.trace(trace_id)
    return engine, spans


def _series(engine, family: str):
    """Sorted (labels, count-ish) series of one metric family."""
    out = []
    for name, kind, _, children in engine.registry.collect():
        if name != family:
            continue
        for labels, child in children:
            value = child.count if kind == "histogram" else child.value
            out.append((tuple(sorted(labels.items())), value))
    return sorted(out)


class TestAsyncThreadedParity:
    @pytest.mark.parametrize("protocol", ["json", "binary"])
    def test_per_op_accounting_is_identical(self, protocol):
        threaded, _ = _run_workload(SketchServer, protocol)
        asynced, _ = _run_workload(AsyncSketchServer, protocol)
        assert threaded.stats.requests == asynced.stats.requests
        assert threaded.stats.errors == asynced.stats.errors
        assert threaded.stats.queries == asynced.stats.queries

    @pytest.mark.parametrize("protocol", ["json", "binary"])
    def test_metric_families_and_series_are_identical(self, protocol):
        threaded, _ = _run_workload(SketchServer, protocol)
        asynced, _ = _run_workload(AsyncSketchServer, protocol)
        t_names = set(threaded.registry.names())
        a_names = set(asynced.registry.names())
        assert t_names == a_names
        for family in ("server_requests_total", "server_errors_total",
                       "server_request_seconds", "span_seconds"):
            assert _series(threaded, family) == _series(asynced, family), (
                f"family {family} diverges between server implementations"
            )

    @pytest.mark.parametrize("protocol", ["json", "binary"])
    def test_span_names_on_a_trace_are_identical(self, protocol):
        _, threaded_spans = _run_workload(SketchServer, protocol)
        _, async_spans = _run_workload(AsyncSketchServer, protocol)
        assert sorted(s["name"] for s in threaded_spans) == (
            sorted(s["name"] for s in async_spans)
        )
        # The server-side request span must parent the engine's work.
        assert "server.request" in {s["name"] for s in threaded_spans}


class TestSlowQueryTraceId:
    """``trace_id=`` must reach the slow-query log on every path."""

    @pytest.mark.parametrize("server_type", [SketchServer, AsyncSketchServer])
    @pytest.mark.parametrize("protocol", ["json", "binary"])
    def test_slow_query_log_carries_the_client_trace_id(
        self, server_type, protocol
    ):
        engine = _make_engine()
        stream = io.StringIO()
        logger = StructuredLogger("t", stream=stream)  # warnings only
        with server_type(
            engine, port=0, logger=logger, slow_query_seconds=0.0
        ) as server:
            server.start()
            with Client(*server.address, protocol=protocol) as client:
                client.query(WORKLOAD_QUERIES[:1])
                trace_id = client.last_trace_id
        log = stream.getvalue()
        assert "event=slow_request" in log
        assert f"trace_id={trace_id}" in log
