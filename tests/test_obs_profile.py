"""The sampling profiler and its span-context bridge.

Most of these tests drive :meth:`SamplingProfiler.sample_once` with
*injected* frames and span snapshots — the aggregation, attribution,
and overhead-accounting logic is deterministic that way, and the edge
cases the live sampler can hit (threads dying mid-sample, stop racing
a drain's read, hostile rates) become unit tests instead of races.
One live test runs the real daemon thread against real work to pin the
end-to-end path.
"""

from __future__ import annotations

import json
import sys
import threading
import time

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SamplingProfiler, render_collapsed
from repro.obs.trace import SpanContextRegistry, Tracer, span_contexts


def _frames_of(thread_ids):
    """Live ``sys._current_frames()`` filtered to ``thread_ids``."""
    frames = sys._current_frames()
    return {tid: frames[tid] for tid in thread_ids if tid in frames}


def _worker_frames():
    """One parked worker thread's id and its live frame.

    The worker blocks on an event inside a recognisably named function,
    so its sampled stack must contain ``_parked_leaf``.
    """
    release = threading.Event()
    ready = threading.Event()

    def _parked_leaf():
        ready.set()
        release.wait(10.0)

    thread = threading.Thread(target=_parked_leaf, daemon=True)
    thread.start()
    assert ready.wait(5.0)
    return thread, release


class TestSpanContextRegistry:
    def test_push_pop_active(self):
        registry = SpanContextRegistry()
        assert registry.active(1) is None
        registry.push(1, "outer")
        registry.push(1, "inner")
        assert registry.active(1) == "inner"
        registry.pop(1)
        assert registry.active(1) == "outer"
        registry.pop(1)
        assert registry.active(1) is None
        assert registry.snapshot() == {}

    def test_snapshot_is_a_copy(self):
        registry = SpanContextRegistry()
        registry.push(7, "a")
        snap = registry.snapshot()
        registry.push(7, "b")
        assert snap == {7: ("a",)}

    def test_prune_drops_dead_threads(self):
        registry = SpanContextRegistry()
        registry.push(1, "a")
        registry.push(2, "b")
        registry.prune([2])
        assert registry.snapshot() == {2: ("b",)}

    def test_tracer_spans_register_their_context(self):
        tracer = Tracer()
        tid = threading.get_ident()
        with tracer.trace("t1"):
            with tracer.span("outer"):
                assert span_contexts().active(tid) == "outer"
                with tracer.span("inner"):
                    assert span_contexts().active(tid) == "inner"
                assert span_contexts().active(tid) == "outer"
        assert span_contexts().active(tid) is None

    def test_context_is_popped_when_the_span_body_raises(self):
        tracer = Tracer()
        tid = threading.get_ident()
        with pytest.raises(RuntimeError):
            with tracer.trace("t1"):
                with tracer.span("doomed"):
                    raise RuntimeError("boom")
        assert span_contexts().active(tid) is None


class TestSamplingCore:
    def test_hz_is_validated(self):
        with pytest.raises(ParameterError):
            SamplingProfiler(hz=0.0)
        with pytest.raises(ParameterError):
            SamplingProfiler(hz=20_000.0)

    def test_sample_attributes_stack_to_active_span(self):
        thread, release = _worker_frames()
        try:
            contexts = SpanContextRegistry()
            contexts.push(thread.ident, "server.request")
            contexts.push(thread.ident, "planner.execute")
            profiler = SamplingProfiler(hz=100, contexts=contexts)
            sampled = profiler.sample_once(
                frames=_frames_of([thread.ident]),
                spans=contexts.snapshot(),
            )
            assert sampled == 1
            snap = profiler.snapshot()
            # Self time lands on the innermost span only; total on both.
            assert snap["spans"]["planner.execute"]["self"] == 1
            assert snap["spans"]["planner.execute"]["total"] == 1
            assert snap["spans"]["server.request"]["self"] == 0
            assert snap["spans"]["server.request"]["total"] == 1
            (stack,) = [s["stack"] for s in snap["stacks"]]
            assert stack.startswith("planner.execute;")
            assert "_parked_leaf" in stack
        finally:
            release.set()
            thread.join(5.0)

    def test_spanless_thread_attributes_to_idle(self):
        thread, release = _worker_frames()
        try:
            profiler = SamplingProfiler(hz=100, contexts=SpanContextRegistry())
            profiler.sample_once(frames=_frames_of([thread.ident]), spans={})
            snap = profiler.snapshot()
            assert snap["spans"]["-"]["self"] == 1
            assert snap["stacks"][0]["stack"].startswith("-;")
        finally:
            release.set()
            thread.join(5.0)

    def test_sampler_skips_its_own_thread(self):
        profiler = SamplingProfiler(hz=100, contexts=SpanContextRegistry())
        sampled = profiler.sample_once(
            frames=_frames_of([threading.get_ident()]), spans={}
        )
        assert sampled == 0
        assert profiler.snapshot()["stacks"] == []

    def test_thread_death_mid_sample_is_harmless(self):
        """A thread that exits between frame capture and the walk.

        ``sys._current_frames()`` returns frame snapshots; the thread
        dying before the walk must neither crash the sampler nor drop
        the sample.
        """
        thread, release = _worker_frames()
        frames = _frames_of([thread.ident])
        contexts = SpanContextRegistry()
        contexts.push(thread.ident, "dying")
        spans = contexts.snapshot()
        release.set()
        thread.join(5.0)
        assert not thread.is_alive()
        profiler = SamplingProfiler(hz=100, contexts=contexts)
        assert profiler.sample_once(frames=frames, spans=spans) == 1
        assert profiler.snapshot()["spans"]["dying"]["self"] == 1
        # The live-path prune drops the dead thread's stale context.
        contexts.prune(sys._current_frames().keys())
        assert thread.ident not in contexts.snapshot()

    def test_zero_sample_export_is_clean(self, tmp_path):
        profiler = SamplingProfiler(hz=100, contexts=SpanContextRegistry())
        snap = profiler.snapshot()
        assert snap["samples"] == 0
        assert snap["threads_sampled"] == 0
        assert snap["overhead_fraction"] == 0.0
        assert snap["spans"] == {} and snap["stacks"] == []
        assert profiler.render_collapsed() == ""
        paths = profiler.dump(str(tmp_path / "empty"))
        assert (tmp_path / "empty.collapsed").read_text() == ""
        loaded = json.loads((tmp_path / "empty.json").read_text())
        assert loaded["samples"] == 0
        assert paths == [str(tmp_path / "empty.collapsed"),
                         str(tmp_path / "empty.json")]

    def test_overhead_billing_with_injected_clock_at_hostile_hz(self):
        """Every tick's cost lands in the counter, even at 10 kHz.

        The injected clock makes each sample appear to cost 1 ms and
        the whole run 1 s of wall time, so the billed overhead fraction
        is exactly ticks * 0.001 / 1.0 — deterministic arithmetic, no
        timing.
        """
        ticks = 50
        clock_value = [0.0]

        def clock():
            return clock_value[0]

        registry = MetricsRegistry()
        profiler = SamplingProfiler(
            hz=10_000, registry=registry,
            contexts=SpanContextRegistry(), clock=clock,
        )
        profiler._started_at = clock()
        for _ in range(ticks):
            profiler.sample_once(frames={}, spans={})
            profiler._bill(0.001)
        clock_value[0] = 1.0
        profiler._wall_seconds = clock() - profiler._started_at
        profiler._started_at = None
        snap = profiler.snapshot()
        assert snap["samples"] == ticks
        assert snap["sample_seconds"] == pytest.approx(ticks * 0.001)
        assert snap["overhead_fraction"] == pytest.approx(ticks * 0.001 / 1.0)
        assert registry.counter("profile_sample_seconds").value == (
            pytest.approx(ticks * 0.001)
        )
        assert registry.counter("profile_samples_total").value == ticks

    def test_negative_cost_never_bills(self):
        profiler = SamplingProfiler(hz=100, contexts=SpanContextRegistry())
        profiler._bill(-1.0)
        assert profiler.snapshot()["sample_seconds"] == 0.0


class TestRenderCollapsed:
    def test_heaviest_first_deterministic(self):
        text = render_collapsed({"a;f;g": 2, "b;f": 5, "a;f": 2})
        assert text == "b;f 5\na;f 2\na;f;g 2\n"

    def test_empty_is_empty_string(self):
        assert render_collapsed({}) == ""


class TestLifecycle:
    def test_start_stop_idempotent_and_stop_freezes_aggregate(self):
        profiler = SamplingProfiler(hz=500, contexts=SpanContextRegistry())
        profiler.start()
        profiler.start()  # second start is a no-op
        assert profiler.running
        deadline = time.monotonic() + 5.0
        while (profiler.snapshot()["samples"] == 0
               and time.monotonic() < deadline):
            time.sleep(0.005)
        profiler.stop()
        profiler.stop()  # idempotent
        assert not profiler.running
        frozen = profiler.snapshot()["samples"]
        assert frozen > 0
        time.sleep(0.02)
        assert profiler.snapshot()["samples"] == frozen

    def test_stop_racing_drain_reads_is_safe(self):
        """Readers hammering snapshot()/render_collapsed() across stop().

        This is the drain race: the server's shutdown path reads the
        profile while the sampler thread may still be mid-tick.  The
        lock serialises them; nothing tears or raises.
        """
        profiler = SamplingProfiler(hz=2_000, contexts=SpanContextRegistry())
        errors: list[BaseException] = []
        stop_reading = threading.Event()

        def reader():
            try:
                while not stop_reading.is_set():
                    profiler.snapshot()
                    profiler.render_collapsed()
            except BaseException as exc:  # pragma: no cover - the failure
                errors.append(exc)

        readers = [threading.Thread(target=reader, daemon=True)
                   for _ in range(3)]
        for thread in readers:
            thread.start()
        for _ in range(5):
            profiler.start()
            time.sleep(0.01)
            profiler.stop()
        stop_reading.set()
        for thread in readers:
            thread.join(5.0)
        assert errors == []
        assert not profiler.running

    def test_live_profile_of_real_work_attributes_spans(self):
        """End to end: daemon sampler + traced busy loop on another thread."""
        tracer = Tracer()
        registry = MetricsRegistry()
        profiler = SamplingProfiler(hz=1_000, registry=registry)
        done = threading.Event()

        def busy():
            with tracer.trace("live"):
                with tracer.span("busy.loop"):
                    deadline = time.monotonic() + 2.0
                    while not done.is_set() and time.monotonic() < deadline:
                        sum(i * i for i in range(500))

        worker = threading.Thread(target=busy, daemon=True)
        profiler.start()
        worker.start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                spans = profiler.snapshot()["spans"]
                if spans.get("busy.loop", {}).get("self", 0) > 0:
                    break
                time.sleep(0.005)
        finally:
            done.set()
            worker.join(5.0)
            profiler.stop()
        snap = profiler.snapshot()
        assert snap["spans"]["busy.loop"]["self"] > 0
        assert any(entry["stack"].startswith("busy.loop;")
                   for entry in snap["stacks"])
        assert registry.counter("profile_samples_total").value == (
            snap["samples"]
        )
        assert snap["sample_seconds"] >= 0.0
