"""Tests for repro.stable.scale.sample_median_scale (the k-aware B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.stable import sample_symmetric_stable, stable_median_scale
from repro.stable.scale import sample_median_scale


class TestOddK:
    @pytest.mark.parametrize("k", [1, 3, 63, 511])
    def test_odd_k_equals_asymptotic_b(self, k):
        """For odd k the middle order statistic is exactly
        median-unbiased, so no correction applies."""
        for p in (0.5, 1.0, 2.0):
            assert sample_median_scale(p, k) == stable_median_scale(p)


class TestEvenK:
    def test_even_k_exceeds_b_for_heavy_tails(self):
        """Averaging the two middle order statistics of a right-skewed
        |stable| sample biases the sample median upward; the calibration
        must sit above the asymptotic median for small p and small k."""
        assert sample_median_scale(0.25, 16) > stable_median_scale(0.25)
        assert sample_median_scale(0.5, 16) > stable_median_scale(0.5)

    def test_bias_shrinks_with_k(self):
        b = stable_median_scale(0.5)
        small_k = sample_median_scale(0.5, 16) - b
        large_k = sample_median_scale(0.5, 1024) - b
        assert abs(large_k) < abs(small_k)

    def test_deterministic(self):
        assert sample_median_scale(0.7, 64) == sample_median_scale(0.7, 64)

    def test_calibration_matches_fresh_simulation(self):
        """Independent Monte Carlo of the same quantity agrees.

        The outer median over 40k replicates has relative sd well
        under 0.7%, so the 2% gate is >= 3 standard errors: a fresh
        seed fails with probability ~1e-3, and the fixed seed makes
        the run itself deterministic.
        """
        p, k = 0.5, 32
        rng = np.random.default_rng(321)
        draws = np.abs(sample_symmetric_stable(p, (40_000, k), rng))
        fresh = float(np.median(np.median(draws, axis=1)))
        cached = sample_median_scale(p, k)
        assert abs(fresh - cached) / cached < 0.02


class TestValidation:
    def test_bad_p(self):
        with pytest.raises(ParameterError):
            sample_median_scale(0.0, 8)
        with pytest.raises(ParameterError):
            sample_median_scale(2.5, 8)

    def test_bad_k(self):
        with pytest.raises(ParameterError):
            sample_median_scale(1.0, 0)
