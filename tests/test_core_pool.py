"""Tests for repro.core.pool: dyadic pools and compound sketches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SketchGenerator, SketchPool, estimate_distance, lp_distance
from repro.errors import ParameterError, ShapeError
from repro.table import TileSpec


def make_pool(shape=(64, 64), p=1.0, k=64, seed=0, min_exponent=2, data_seed=0):
    data = np.random.default_rng(data_seed).normal(size=shape)
    gen = SketchGenerator(p=p, k=k, seed=seed)
    return data, SketchPool(data, gen, min_exponent=min_exponent)


class TestConstruction:
    def test_canonical_sizes(self):
        _, pool = make_pool(shape=(16, 32), min_exponent=2)
        sizes = pool.canonical_sizes()
        assert (4, 4) in sizes
        assert (16, 32) in sizes
        assert (32, 32) not in sizes
        assert all(h >= 4 and w >= 4 for h, w in sizes)

    def test_min_exponent_too_large(self):
        data = np.zeros((8, 8))
        gen = SketchGenerator(p=1.0, k=2)
        with pytest.raises(ParameterError):
            SketchPool(data, gen, min_exponent=4)

    def test_non_2d_rejected(self):
        with pytest.raises(ShapeError):
            SketchPool(np.zeros(8), SketchGenerator(p=1.0, k=2))

    def test_lazy_building(self):
        _, pool = make_pool(shape=(32, 32), k=4)
        assert pool.maps_built == 0
        pool.sketch_for(TileSpec(0, 0, 8, 8))
        assert pool.maps_built == 4  # four streams of one size
        pool.sketch_for(TileSpec(1, 1, 8, 8))
        assert pool.maps_built == 4  # reused

    def test_build_all(self):
        _, pool = make_pool(shape=(16, 16), k=2, min_exponent=3)
        pool.build_all()
        # exponents 3..4 on both axes => 2x2 sizes, 4 streams each
        assert pool.maps_built == 16
        assert pool.nbytes > 0


class TestCompoundSketch:
    def test_dyadic_tile_estimate_close(self):
        """For a power-of-two tile all four anchors coincide: the compound
        sketch is the sum of 4 independent sketches of the same region,
        and the distance estimate carries a factor ~4."""
        data, pool = make_pool(shape=(64, 64), k=256)
        a = pool.sketch_for(TileSpec(0, 0, 16, 16))
        b = pool.sketch_for(TileSpec(32, 32, 16, 16))
        exact = lp_distance(data[0:16, 0:16], data[32:48, 32:48], 1.0)
        estimate = estimate_distance(a, b)
        # Sum of 4 independent Cauchy terms of equal scale has scale 4x.
        assert 0.7 * 4 * exact < estimate < 1.3 * 4 * exact

    def test_general_tile_within_theorem5_band(self):
        data, pool = make_pool(shape=(64, 64), k=256)
        spec_a = TileSpec(0, 0, 11, 13)
        spec_b = TileSpec(30, 20, 11, 13)
        a = pool.sketch_for(spec_a)
        b = pool.sketch_for(spec_b)
        exact = lp_distance(data[spec_a.slices], data[spec_b.slices], 1.0)
        estimate = estimate_distance(a, b)
        # Theorem 5: (1 - eps) d <= estimate <= 4 (1 + eps) d.
        assert 0.7 * exact < estimate < 4 * 1.3 * exact

    def test_same_tile_zero_distance(self):
        _, pool = make_pool(k=16)
        spec = TileSpec(3, 5, 9, 6)
        a = pool.sketch_for(spec)
        b = pool.sketch_for(spec)
        assert estimate_distance(a, b) == 0.0

    def test_same_shape_tiles_comparable(self):
        _, pool = make_pool(k=8)
        a = pool.sketch_for(TileSpec(0, 0, 10, 10))
        b = pool.sketch_for(TileSpec(5, 5, 10, 10))
        assert a.key == b.key

    def test_different_shape_tiles_not_comparable(self):
        _, pool = make_pool(k=8)
        a = pool.sketch_for(TileSpec(0, 0, 10, 10))
        b = pool.sketch_for(TileSpec(0, 0, 10, 12))
        assert a.key != b.key

    def test_tile_below_min_rejected(self):
        _, pool = make_pool(min_exponent=3, k=4)
        with pytest.raises(ParameterError):
            pool.sketch_for(TileSpec(0, 0, 4, 16))

    def test_tile_outside_table_rejected(self):
        _, pool = make_pool(shape=(16, 16), k=4)
        with pytest.raises(ShapeError):
            pool.sketch_for(TileSpec(10, 10, 8, 8))


class TestDisjointSketch:
    def test_matches_direct_sketch_distribution(self):
        """Disjoint composition is an *exact* sketch: its estimate has no
        Theorem-5 inflation."""
        data, pool = make_pool(shape=(64, 64), k=256, min_exponent=2)
        spec_a = TileSpec(0, 0, 12, 20)  # 12 = 8+4, 20 = 16+4
        spec_b = TileSpec(32, 32, 12, 20)
        a = pool.disjoint_sketch_for(spec_a)
        b = pool.disjoint_sketch_for(spec_b)
        exact = lp_distance(data[spec_a.slices], data[spec_b.slices], 1.0)
        estimate = estimate_distance(a, b)
        assert 0.75 * exact < estimate < 1.25 * exact

    def test_dyadic_tile_single_block(self):
        """A power-of-two tile decomposes into exactly itself, so the
        disjoint sketch equals the plain stream-0 pipeline sketch."""
        data, pool = make_pool(shape=(32, 32), k=16)
        spec = TileSpec(4, 4, 8, 8)
        s = pool.disjoint_sketch_for(spec)
        direct = pool.generator.sketch(data[spec.slices])
        np.testing.assert_allclose(s.values, direct.values, atol=1e-4)

    def test_indivisible_dims_rejected(self):
        _, pool = make_pool(min_exponent=2, k=4)
        with pytest.raises(ParameterError):
            pool.disjoint_sketch_for(TileSpec(0, 0, 10, 8))  # 10 % 4 != 0

    def test_binary_segments(self):
        segments = SketchPool._binary_segments(22)  # 16 + 4 + 2
        assert segments == [(0, 4), (16, 2), (20, 1)]

    def test_segments_tile_the_length(self):
        for length in (1, 2, 3, 7, 22, 64, 100):
            segments = SketchPool._binary_segments(length)
            covered = sum(1 << exp for _, exp in segments)
            assert covered == length
            offsets = [off for off, _ in segments]
            assert offsets == sorted(offsets)


class TestMemoryBudget:
    def make_capped_pool(self, max_bytes):
        data = np.random.default_rng(3).normal(size=(32, 32))
        gen = SketchGenerator(p=1.0, k=8, seed=0)
        return SketchPool(data, gen, min_exponent=2, max_bytes=max_bytes)

    def test_unbounded_by_default(self):
        _, pool = make_pool(shape=(32, 32), k=4)
        pool.sketch_for(TileSpec(0, 0, 8, 8))
        pool.sketch_for(TileSpec(0, 0, 16, 16))
        assert pool.maps_evicted == 0

    def test_eviction_keeps_usage_bounded(self):
        pool = self.make_capped_pool(max_bytes=200_000)
        for size in (4, 8, 16):
            pool.sketch_for(TileSpec(0, 0, size, size))
        assert pool.maps_evicted > 0
        # The budget may be briefly exceeded by the single protected
        # in-flight map, but settles under it plus one map's worth.
        assert pool.nbytes <= 200_000 + max(m.nbytes for m in pool._maps.values())

    def test_evicted_maps_rebuild_transparently(self):
        pool = self.make_capped_pool(max_bytes=150_000)
        spec = TileSpec(0, 0, 4, 4)
        first = pool.sketch_for(spec)
        pool.sketch_for(TileSpec(0, 0, 16, 16))  # pushes 4x4 maps out
        again = pool.sketch_for(spec)
        np.testing.assert_allclose(again.values, first.values, atol=1e-5)

    def test_bad_budget_rejected(self):
        data = np.zeros((8, 8))
        with pytest.raises(ParameterError):
            SketchPool(data, SketchGenerator(p=1.0, k=2), min_exponent=2, max_bytes=0)
