"""Tests for repro.core.pool: dyadic pools and compound sketches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SketchGenerator, SketchPool, estimate_distance, lp_distance
from repro.errors import ParameterError, ShapeError
from repro.table import TileSpec


def make_pool(shape=(64, 64), p=1.0, k=64, seed=0, min_exponent=2, data_seed=0):
    data = np.random.default_rng(data_seed).normal(size=shape)
    gen = SketchGenerator(p=p, k=k, seed=seed)
    return data, SketchPool(data, gen, min_exponent=min_exponent)


class TestConstruction:
    def test_canonical_sizes(self):
        _, pool = make_pool(shape=(16, 32), min_exponent=2)
        sizes = pool.canonical_sizes()
        assert (4, 4) in sizes
        assert (16, 32) in sizes
        assert (32, 32) not in sizes
        assert all(h >= 4 and w >= 4 for h, w in sizes)

    def test_min_exponent_too_large(self):
        data = np.zeros((8, 8))
        gen = SketchGenerator(p=1.0, k=2)
        with pytest.raises(ParameterError):
            SketchPool(data, gen, min_exponent=4)

    def test_non_2d_rejected(self):
        with pytest.raises(ShapeError):
            SketchPool(np.zeros(8), SketchGenerator(p=1.0, k=2))

    def test_lazy_building(self):
        _, pool = make_pool(shape=(32, 32), k=4)
        assert pool.maps_built == 0
        pool.sketch_for(TileSpec(0, 0, 8, 8))
        assert pool.maps_built == 4  # four streams of one size
        pool.sketch_for(TileSpec(1, 1, 8, 8))
        assert pool.maps_built == 4  # reused

    def test_build_all(self):
        _, pool = make_pool(shape=(16, 16), k=2, min_exponent=3)
        pool.build_all()
        # exponents 3..4 on both axes => 2x2 sizes, 4 streams each
        assert pool.maps_built == 16
        assert pool.nbytes > 0


class TestCompoundSketch:
    def test_dyadic_tile_estimate_close(self):
        """For a power-of-two tile all four anchors coincide: the compound
        sketch is the sum of 4 independent sketches of the same region,
        and the distance estimate carries a factor ~4."""
        data, pool = make_pool(shape=(64, 64), k=256)
        a = pool.sketch_for(TileSpec(0, 0, 16, 16))
        b = pool.sketch_for(TileSpec(32, 32, 16, 16))
        exact = lp_distance(data[0:16, 0:16], data[32:48, 32:48], 1.0)
        estimate = estimate_distance(a, b)
        # Sum of 4 independent Cauchy terms of equal scale has scale 4x.
        assert 0.7 * 4 * exact < estimate < 1.3 * 4 * exact

    def test_general_tile_within_theorem5_band(self):
        data, pool = make_pool(shape=(64, 64), k=256)
        spec_a = TileSpec(0, 0, 11, 13)
        spec_b = TileSpec(30, 20, 11, 13)
        a = pool.sketch_for(spec_a)
        b = pool.sketch_for(spec_b)
        exact = lp_distance(data[spec_a.slices], data[spec_b.slices], 1.0)
        estimate = estimate_distance(a, b)
        # Theorem 5: (1 - eps) d <= estimate <= 4 (1 + eps) d.
        assert 0.7 * exact < estimate < 4 * 1.3 * exact

    def test_same_tile_zero_distance(self):
        _, pool = make_pool(k=16)
        spec = TileSpec(3, 5, 9, 6)
        a = pool.sketch_for(spec)
        b = pool.sketch_for(spec)
        assert estimate_distance(a, b) == 0.0

    def test_same_shape_tiles_comparable(self):
        _, pool = make_pool(k=8)
        a = pool.sketch_for(TileSpec(0, 0, 10, 10))
        b = pool.sketch_for(TileSpec(5, 5, 10, 10))
        assert a.key == b.key

    def test_different_shape_tiles_not_comparable(self):
        _, pool = make_pool(k=8)
        a = pool.sketch_for(TileSpec(0, 0, 10, 10))
        b = pool.sketch_for(TileSpec(0, 0, 10, 12))
        assert a.key != b.key

    def test_tile_below_min_rejected(self):
        _, pool = make_pool(min_exponent=3, k=4)
        with pytest.raises(ParameterError):
            pool.sketch_for(TileSpec(0, 0, 4, 16))

    def test_tile_outside_table_rejected(self):
        _, pool = make_pool(shape=(16, 16), k=4)
        with pytest.raises(ShapeError):
            pool.sketch_for(TileSpec(10, 10, 8, 8))


class TestDisjointSketch:
    def test_matches_direct_sketch_distribution(self):
        """Disjoint composition is an *exact* sketch: its estimate has no
        Theorem-5 inflation."""
        data, pool = make_pool(shape=(64, 64), k=256, min_exponent=2)
        spec_a = TileSpec(0, 0, 12, 20)  # 12 = 8+4, 20 = 16+4
        spec_b = TileSpec(32, 32, 12, 20)
        a = pool.disjoint_sketch_for(spec_a)
        b = pool.disjoint_sketch_for(spec_b)
        exact = lp_distance(data[spec_a.slices], data[spec_b.slices], 1.0)
        estimate = estimate_distance(a, b)
        assert 0.75 * exact < estimate < 1.25 * exact

    def test_dyadic_tile_single_block(self):
        """A power-of-two tile decomposes into exactly itself, so the
        disjoint sketch equals the plain stream-0 pipeline sketch."""
        data, pool = make_pool(shape=(32, 32), k=16)
        spec = TileSpec(4, 4, 8, 8)
        s = pool.disjoint_sketch_for(spec)
        direct = pool.generator.sketch(data[spec.slices])
        np.testing.assert_allclose(s.values, direct.values, atol=1e-4)

    def test_indivisible_dims_rejected(self):
        _, pool = make_pool(min_exponent=2, k=4)
        with pytest.raises(ParameterError):
            pool.disjoint_sketch_for(TileSpec(0, 0, 10, 8))  # 10 % 4 != 0

    def test_binary_segments(self):
        segments = SketchPool._binary_segments(22)  # 16 + 4 + 2
        assert segments == [(0, 4), (16, 2), (20, 1)]

    def test_segments_tile_the_length(self):
        for length in (1, 2, 3, 7, 22, 64, 100):
            segments = SketchPool._binary_segments(length)
            covered = sum(1 << exp for _, exp in segments)
            assert covered == length
            offsets = [off for off, _ in segments]
            assert offsets == sorted(offsets)


class TestMemoryBudget:
    def make_capped_pool(self, max_bytes):
        data = np.random.default_rng(3).normal(size=(32, 32))
        gen = SketchGenerator(p=1.0, k=8, seed=0)
        return SketchPool(data, gen, min_exponent=2, max_bytes=max_bytes)

    def test_unbounded_by_default(self):
        _, pool = make_pool(shape=(32, 32), k=4)
        pool.sketch_for(TileSpec(0, 0, 8, 8))
        pool.sketch_for(TileSpec(0, 0, 16, 16))
        assert pool.maps_evicted == 0

    def test_eviction_keeps_usage_bounded(self):
        pool = self.make_capped_pool(max_bytes=200_000)
        for size in (4, 8, 16):
            pool.sketch_for(TileSpec(0, 0, size, size))
        assert pool.maps_evicted > 0
        # The budget may be briefly exceeded by the single protected
        # in-flight map, but settles under it plus one map's worth.
        assert pool.nbytes <= 200_000 + max(m.nbytes for m in pool._maps.values())

    def test_evicted_maps_rebuild_transparently(self):
        pool = self.make_capped_pool(max_bytes=150_000)
        spec = TileSpec(0, 0, 4, 4)
        first = pool.sketch_for(spec)
        pool.sketch_for(TileSpec(0, 0, 16, 16))  # pushes 4x4 maps out
        again = pool.sketch_for(spec)
        np.testing.assert_allclose(again.values, first.values, atol=1e-5)

    def test_bad_budget_rejected(self):
        data = np.zeros((8, 8))
        with pytest.raises(ParameterError):
            SketchPool(data, SketchGenerator(p=1.0, k=2), min_exponent=2, max_bytes=0)

    def test_protected_oldest_does_not_stop_eviction(self):
        """Regression: when the protected map happens to be the oldest
        entry, younger evictable maps must still be dropped until the
        pool is back under budget (the old code break-ed and left the
        pool over max_bytes)."""
        pool = self.make_capped_pool(max_bytes=10**9)  # build freely first
        for size in (4, 8, 16):
            pool.sketch_for(TileSpec(0, 0, size, size))
        protected = next(iter(pool._maps))  # genuinely the oldest key
        pool.max_bytes = pool._maps[protected].nbytes  # room for it alone
        pool._enforce_budget(protect=protected)
        assert list(pool._maps) == [protected]
        assert pool.nbytes <= pool.max_bytes
        assert pool.maps_evicted > 0

    def test_budget_invariant_after_every_access(self):
        """After any access — build or cache hit — the pool must sit at
        or under its budget (the single in-flight map is the only
        allowed excess, and these maps all fit)."""
        pool = self.make_capped_pool(max_bytes=150_000)
        specs = [
            TileSpec(0, 0, 4, 4),
            TileSpec(0, 0, 16, 16),
            TileSpec(0, 0, 4, 4),  # rebuild or hit
            TileSpec(0, 0, 8, 8),
            TileSpec(0, 0, 4, 4),
            TileSpec(0, 0, 16, 16),
        ]
        for spec in specs:
            pool.sketch_for(spec)
            assert pool.nbytes <= pool.max_bytes

    def test_cache_hits_refresh_lru_order(self):
        """A hit must protect its maps from the next eviction round."""
        pool = self.make_capped_pool(max_bytes=10**9)
        pool.sketch_for(TileSpec(0, 0, 4, 4))
        pool.sketch_for(TileSpec(0, 0, 8, 8))
        pool.sketch_for(TileSpec(0, 0, 4, 4))  # hits: 4x4 now most recent
        order = list(pool._maps)
        assert order[-4:] == [(2, 2, s) for s in (0, 1, 2, 3)]
        # Squeeze the budget to two maps: the survivors must be the two
        # most recently touched 4x4 stream maps, not the 8x8 ones.
        pool.max_bytes = 2 * pool._maps[(2, 2, 0)].nbytes
        pool.sketch_for(TileSpec(0, 0, 4, 4))
        assert all(key[:2] == (2, 2) for key in pool._maps)


class TestStatsAndParallelBuild:
    def test_pool_build_computes_each_data_fft_once(self):
        """Theorem-6 preprocessing over 4 streams x all sizes touches the
        data transform once per distinct padded shape — everything else
        is served by the pool's spectrum cache."""
        _, pool = make_pool(shape=(16, 16), k=2, min_exponent=3)
        pool.build_all()
        # exponents 3..4 on both axes => 2x2 sizes, 4 streams each,
        # and at most 4 distinct padded shapes.
        assert pool.maps_built == 16
        assert pool.stats.maps_built == 16
        assert pool.stats.total_data_ffts == 16
        assert pool.stats.data_ffts_computed <= 4  # one per padded shape
        assert pool.stats.data_ffts_reused >= 12
        assert pool.stats.kernel_ffts == 16 * pool.generator.k

    def test_parallel_build_matches_sequential(self):
        data = np.random.default_rng(5).normal(size=(32, 32))
        gen_a = SketchGenerator(p=1.0, k=4, seed=2)
        gen_b = SketchGenerator(p=1.0, k=4, seed=2)
        sequential = SketchPool(data, gen_a, min_exponent=3)
        parallel = SketchPool(data, gen_b, min_exponent=3)
        sequential.build_all()
        parallel.build_all(workers=4)
        assert parallel.maps_built == sequential.maps_built
        assert set(parallel._maps) == set(sequential._maps)
        for key, built in sequential._maps.items():
            np.testing.assert_allclose(parallel._maps[key], built, atol=1e-5)

    def test_parallel_build_skips_existing_maps(self):
        _, pool = make_pool(shape=(16, 16), k=2, min_exponent=3)
        pool.sketch_for(TileSpec(0, 0, 8, 8))
        assert pool.maps_built == 4
        pool.build_all(workers=2)
        assert pool.maps_built == 16  # only the 12 missing maps were built
        pool.build_all(workers=2)  # idempotent
        assert pool.maps_built == 16

    def test_bad_workers_rejected(self):
        _, pool = make_pool(shape=(16, 16), k=2, min_exponent=3)
        with pytest.raises(ParameterError):
            pool.build_all(workers=0)

    def test_eviction_accounted_in_stats(self):
        data = np.random.default_rng(3).normal(size=(32, 32))
        gen = SketchGenerator(p=1.0, k=8, seed=0)
        pool = SketchPool(data, gen, min_exponent=2, max_bytes=200_000)
        for size in (4, 8, 16):
            pool.sketch_for(TileSpec(0, 0, size, size))
        assert pool.stats.maps_evicted == pool.maps_evicted > 0
        assert pool.stats.bytes_evicted > 0
        assert pool.stats.bytes_built >= pool.nbytes
