"""Chaos tests: scripted faults against a live server, deterministic recovery.

Every test here runs a *real* TCP server and injects faults through
:mod:`repro.testing` — scripted disconnects, partial writes, garbage
frames — or through controlled engine slowness (an event-gated query
path).  The headline property: under disconnect-then-recover faults a
retrying :class:`~repro.serve.Client` returns **bit-identical** results
to the fault-free run, because retries re-issue idempotent reads against
the same deterministic sketch pools.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ConnectionLostError,
    ProtocolError,
    QueryTimeoutError,
    RetriesExhaustedError,
    ServerDrainingError,
    ServerOverloadedError,
)
from repro.serve import Client, RetryPolicy, SketchEngine, SketchServer
from repro.testing import (
    Delay,
    DropAfterSend,
    DropBeforeSend,
    FaultPlan,
    GarbageRequest,
    GarbageResponse,
    Ok,
    PartialWrite,
    flaky_connect,
)

QUERIES = [
    ("t", (0, 0, 8, 8), (16, 16, 8, 8)),
    ("t", (1, 1, 12, 12), (32, 32, 12, 12)),
    ("t", (0, 0, 16, 16), (32, 16, 16, 16), "disjoint"),
]


def make_engine() -> SketchEngine:
    engine = SketchEngine(p=1.0, k=16, seed=2)
    engine.register_array("t", np.random.default_rng(8).normal(size=(64, 64)))
    return engine


@pytest.fixture(scope="module")
def server():
    with SketchServer(make_engine()) as srv:
        srv.start()
        yield srv


@pytest.fixture(scope="module")
def baseline(server):
    """The fault-free answers every chaos run must reproduce exactly."""
    with Client(*server.address, timeout=10.0) as client:
        return [(r.distance, r.strategy) for r in client.query(QUERIES)]


def chaos_client(server, plan, attempts=6, **kwargs) -> Client:
    host, port = server.address
    kwargs.setdefault("retry", RetryPolicy(max_attempts=attempts,
                                           base_delay=0.01, max_delay=0.05))
    kwargs.setdefault("rng", random.Random(1234))
    return Client(host, port, timeout=10.0,
                  connect=flaky_connect(host, port, plan), **kwargs)


class TestDisconnectRecovery:
    """The acceptance headline: disconnect faults, bit-identical answers."""

    def test_drop_before_send_is_transparent(self, server, baseline):
        plan = FaultPlan([DropBeforeSend()])
        with chaos_client(server, plan) as client:
            got = [(r.distance, r.strategy) for r in client.query(QUERIES)]
        assert got == baseline
        assert client.resilience["retries_total"] == 1

    def test_drop_after_send_is_transparent_for_idempotent_reads(
        self, server, baseline
    ):
        plan = FaultPlan([DropAfterSend()])
        with chaos_client(server, plan) as client:
            got = [(r.distance, r.strategy) for r in client.query(QUERIES)]
        assert got == baseline
        assert client.resilience["reconnects_total"] == 1

    def test_partial_write_never_crashes_the_server(self, server, baseline):
        plan = FaultPlan([PartialWrite(nbytes=7)])
        with chaos_client(server, plan) as client:
            got = [(r.distance, r.strategy) for r in client.query(QUERIES)]
        assert got == baseline
        # The truncated frame reached the server; it must still answer
        # a pristine client afterwards.
        with Client(*server.address, timeout=10.0) as probe:
            assert probe.ping()

    def test_burst_of_mixed_disconnects(self, server, baseline):
        plan = FaultPlan([DropAfterSend(), DropBeforeSend(), PartialWrite(3),
                          Delay(0.01), Ok()])
        with chaos_client(server, plan) as client:
            got = [(r.distance, r.strategy) for r in client.query(QUERIES)]
        assert got == baseline
        assert client.resilience["retries_total"] == 3
        assert plan.injected(DropAfterSend) == 1
        assert plan.injected(PartialWrite) == 1

    def test_chaos_schedule_is_deterministic(self, server):
        def run():
            plan = FaultPlan([DropAfterSend(), DropBeforeSend()])
            with chaos_client(server, plan) as client:
                results = [r.distance for r in client.query(QUERIES)]
                return results, client.resilience["retries_total"], plan.history

        assert run() == run()

    def test_retries_exhaust_into_typed_error(self, server):
        plan = FaultPlan([DropBeforeSend()] * 10)
        with chaos_client(server, plan, attempts=3) as client:
            with pytest.raises(RetriesExhaustedError) as info:
                client.query(QUERIES)
        assert isinstance(info.value.__cause__, ConnectionLostError)
        assert client.resilience["retries_total"] == 2

    def test_no_retry_policy_fails_fast(self, server):
        plan = FaultPlan([DropBeforeSend()])
        with chaos_client(server, plan, retry=RetryPolicy.none()) as client:
            with pytest.raises(ConnectionLostError):
                client.query(QUERIES)
        assert client.resilience["retries_total"] == 0


class _SlowFailTransport:
    """Every request burns ``delay`` seconds, then the connection dies."""

    def __init__(self, delay: float):
        self._delay = delay

    def send_line(self, data: bytes) -> None:
        time.sleep(self._delay)
        raise ConnectionResetError("fault injection: slow peer died")

    def recv_line(self) -> bytes:  # pragma: no cover - send always raises
        return b""

    def settimeout(self, timeout) -> None:
        pass

    def close(self) -> None:
        pass


class TestDeadlineClassification:
    """Deadline expiries must be QueryTimeoutError; only a deadline-free
    run out of attempts is RetriesExhaustedError.  The historical bug
    blurred them: a deadline that expired during backoff (or was
    outlived by the final attempt) surfaced as retry exhaustion, so the
    shard router — which fails over on timeouts but counts exhaustion
    against the shard — misclassified slow shards as dead ones."""

    def test_deadline_expiring_during_backoff_is_a_timeout(self, server):
        plan = FaultPlan(default=DropBeforeSend())  # never recovers
        policy = RetryPolicy(max_attempts=4, base_delay=5.0, jitter="none")
        with chaos_client(server, plan, retry=policy, deadline=0.3) as client:
            start = time.monotonic()
            with pytest.raises(QueryTimeoutError, match="expires during") as info:
                client.ping()
            # Classified eagerly: it did not sit out the 5s backoff
            # just to report the deadline it already knew was lost.
            assert time.monotonic() - start < 2.0
        assert isinstance(info.value.__cause__, ConnectionLostError)

    def test_deadline_outlived_by_final_attempt_is_a_timeout(self):
        client = Client(
            "127.0.0.1", 1, timeout=1.0,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter="none"),
            deadline=0.15,
            connect=lambda timeout: _SlowFailTransport(0.08),
            rng=random.Random(3),
        )
        with client:
            with pytest.raises(QueryTimeoutError, match="exhausted after") as info:
                client.ping()
        assert isinstance(info.value.__cause__, ConnectionLostError)

    def test_same_faults_without_deadline_are_retries_exhausted(self):
        client = Client(
            "127.0.0.1", 1, timeout=1.0,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter="none"),
            connect=lambda timeout: _SlowFailTransport(0.01),
            rng=random.Random(3),
        )
        with client:
            with pytest.raises(RetriesExhaustedError):
                client.ping()


class TestGarbageFrames:
    def test_garbage_response_raises_typed_error_then_recovers(self, server):
        plan = FaultPlan([GarbageResponse()])
        with chaos_client(server, plan) as client:
            with pytest.raises(ProtocolError, match="invalid JSON"):
                client.ping()
            # The stream was desynchronised, so the client reconnects;
            # the next request succeeds on a fresh connection.
            assert client.ping()
            assert client.resilience["reconnects_total"] == 1

    def test_garbage_request_yields_typed_server_error(self, server):
        plan = FaultPlan([GarbageRequest(payload=b"\x01\x02 nope\n")])
        with chaos_client(server, plan) as client:
            with pytest.raises(ProtocolError, match="not valid JSON"):
                client.ping()
            assert client.ping()  # same connection still framed correctly


def binary_chaos_client(server, plan, attempts=6, **kwargs) -> Client:
    """A retrying *binary* client whose transport replays ``plan``."""
    host, port = server.address
    kwargs.setdefault("retry", RetryPolicy(max_attempts=attempts,
                                           base_delay=0.01, max_delay=0.05))
    kwargs.setdefault("rng", random.Random(1234))
    return Client(host, port, timeout=10.0, protocol="binary",
                  connect=flaky_connect(host, port, plan, protocol="binary"),
                  **kwargs)


class TestBinaryTransportChaos:
    """The chaos headline holds over binary frames too — and because
    ``baseline`` was computed over JSON, recovery equality here is also
    cross-protocol equality: a binary client riding out disconnects
    lands on the very bits a fault-free JSON client saw."""

    def test_disconnect_recovery_is_bit_identical(self, server, baseline):
        plan = FaultPlan([DropAfterSend(), DropBeforeSend(), Ok()])
        with binary_chaos_client(server, plan) as client:
            got = [(r.distance, r.strategy) for r in client.query(QUERIES)]
        assert got == baseline
        assert client.resilience["retries_total"] == 2
        assert client.resilience["reconnects_total"] >= 1

    def test_partial_binary_frame_never_crashes_the_server(
        self, server, baseline
    ):
        # 7 bytes cuts inside the 16-byte frame header; the server must
        # answer its truncated-header error and drop the connection
        # without taking the process down.
        plan = FaultPlan([PartialWrite(nbytes=7)])
        with binary_chaos_client(server, plan) as client:
            got = [(r.distance, r.strategy) for r in client.query(QUERIES)]
        assert got == baseline
        with Client(*server.address, timeout=10.0, protocol="binary") as probe:
            assert probe.ping()

    def test_garbage_binary_response_is_typed_then_recovers(self, server):
        # The default garbage payload is 18 bytes, so it parses as a
        # frame header with kind 0x00 — an unknown kind, a typed error.
        plan = FaultPlan([GarbageResponse()])
        with binary_chaos_client(server, plan) as client:
            with pytest.raises(ProtocolError, match="unknown frame kind"):
                client.ping()
            # Desynchronised stream: the client reconnects and recovers.
            assert client.ping()
            assert client.resilience["reconnects_total"] == 1

    def test_garbage_request_over_binary_yields_typed_server_error(
        self, server
    ):
        # JSON bytes on a negotiated binary connection: the server reads
        # '{' (0x7b) as a frame kind, answers a connection-level error
        # frame (request id 0), and hangs up.
        plan = FaultPlan([GarbageRequest(payload=b'{"op": "ping"}\n\n\n\n\n')])
        with binary_chaos_client(server, plan) as client:
            with pytest.raises(ProtocolError, match="unknown frame kind"):
                client.ping()
            # The server dropped that connection; the next request rides
            # a reconnect and succeeds.
            assert client.ping()

    def test_chaos_schedule_is_deterministic_over_binary(self, server):
        def run():
            plan = FaultPlan([DropAfterSend(), DropBeforeSend()])
            with binary_chaos_client(server, plan) as client:
                results = [r.distance for r in client.query(QUERIES)]
                return results, client.resilience["retries_total"], plan.history

        assert run() == run()


class TestLoadShedding:
    def make_gated_server(self, max_inflight=1):
        engine = make_engine()
        release = threading.Event()
        original = engine.query

        def gated_query(queries, timeout=None):
            release.wait(10.0)
            return original(queries, timeout=timeout)

        engine.query = gated_query
        server = SketchServer(engine, max_inflight=max_inflight)
        server.start()
        return server, release

    def occupy(self, server, results):
        def worker():
            with Client(*server.address, timeout=15.0) as client:
                results.append(client.query(QUERIES)[0].distance)

        thread = threading.Thread(target=worker)
        thread.start()
        deadline = time.monotonic() + 5.0
        while server.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.inflight >= 1
        return thread

    def test_saturated_server_sheds_with_retry_later(self):
        server, release = self.make_gated_server()
        try:
            results: list = []
            thread = self.occupy(server, results)
            with Client(*server.address, timeout=5.0,
                        retry=RetryPolicy.none()) as client:
                with pytest.raises(ServerOverloadedError, match="retry later"):
                    client.query(QUERIES)
                # Cheap introspection ops are never shed: monitoring
                # keeps working while the engine is saturated.
                assert client.ping()
                assert client.health()["status"] == "ok"
            release.set()
            thread.join(timeout=10.0)
            assert results  # the occupying query completed normally
            snapshot = server.engine.stats_snapshot()
            sheds = snapshot["metrics"]["sheds_total"]["samples"][0]["value"]
            assert sheds >= 1
        finally:
            release.set()
            server.stop()

    def test_shed_carries_retry_later_wire_code(self):
        server, release = self.make_gated_server()
        try:
            results: list = []
            thread = self.occupy(server, results)
            import json

            with socket.create_connection(server.address, timeout=5.0) as sock:
                sock.sendall(b'{"op": "query", "queries": [{"table": "t", '
                             b'"a": [0, 0, 8, 8], "b": [8, 8, 8, 8]}]}\n')
                response = json.loads(sock.makefile("rb").readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ServerOverloadedError"
            assert response["error"]["code"] == "RETRY_LATER"
            release.set()
            thread.join(timeout=10.0)
        finally:
            release.set()
            server.stop()

    def test_retrying_client_rides_through_saturation(self):
        server, release = self.make_gated_server()
        try:
            results: list = []
            thread = self.occupy(server, results)
            threading.Timer(0.3, release.set).start()
            with Client(*server.address, timeout=15.0,
                        retry=RetryPolicy(max_attempts=10, base_delay=0.1,
                                          max_delay=0.2),
                        rng=random.Random(5)) as client:
                answers = client.query(QUERIES)
            assert len(answers) == len(QUERIES)
            assert client.resilience["retries_total"] >= 1
            thread.join(timeout=10.0)
        finally:
            release.set()
            server.stop()

    def test_saturated_server_sheds_binary_clients_too(self):
        """Same admission semantics on the frame path: queries shed with
        ``RETRY_LATER`` while cheap introspection keeps answering."""
        server, release = self.make_gated_server()
        try:
            results: list = []
            thread = self.occupy(server, results)
            with Client(*server.address, timeout=5.0, protocol="binary",
                        retry=RetryPolicy.none()) as client:
                with pytest.raises(ServerOverloadedError, match="retry later"):
                    client.query(QUERIES)
                assert client.ping()
                assert client.health()["status"] == "ok"
            release.set()
            thread.join(timeout=10.0)
            assert results
        finally:
            release.set()
            server.stop()

    def test_oversized_batch_sheds(self):
        engine = make_engine()
        with SketchServer(engine, max_batch_queries=2) as server:
            server.start()
            with Client(*server.address, timeout=5.0,
                        retry=RetryPolicy.none()) as client:
                with pytest.raises(ServerOverloadedError, match="split the batch"):
                    client.query(QUERIES)  # 3 queries > cap of 2
                assert client.query(QUERIES[:2])  # within the cap


class TestGracefulDrain:
    """The known sharp edge: stop() used to join-and-hope.  Now it must
    verify the drain, release the socket, and stay idempotent with a
    slow batch still in flight."""

    def make_slow_server(self, hold_seconds=0.8, drain_timeout=5.0):
        engine = make_engine()
        original = engine.query

        def slow_query(queries, timeout=None):
            time.sleep(hold_seconds)
            return original(queries, timeout=timeout)

        engine.query = slow_query
        server = SketchServer(engine, drain_timeout=drain_timeout)
        server.start()
        return server

    def wait_for_inflight(self, server):
        deadline = time.monotonic() + 5.0
        while server.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.inflight >= 1

    def test_drain_completes_inflight_batch_and_releases_socket(self):
        server = self.make_slow_server()
        host, port = server.address
        results: list = []

        def worker():
            with Client(host, port, timeout=15.0) as client:
                results.append(client.query(QUERIES)[0].distance)

        thread = threading.Thread(target=worker)
        thread.start()
        self.wait_for_inflight(server)
        assert server.stop() is True  # drained cleanly
        thread.join(timeout=10.0)
        assert results  # the in-flight batch got its full response
        # The listening socket is actually released: reconnecting fails.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)
        # Idempotent under repetition after a drain.
        assert server.stop() is True
        server.close()  # historical alias, also idempotent
        drains = server.engine.stats_snapshot()["metrics"]["drain_seconds"]
        hist = drains["samples"][0]["histogram"]
        assert hist["count"] == 1  # repeats do not re-record
        assert hist["max"] >= 0.0

    def test_concurrent_stops_race_safely(self):
        server = self.make_slow_server(hold_seconds=0.5)
        results: list = []
        thread = threading.Thread(
            target=lambda: results.append(
                Client(*server.address, timeout=15.0).query(QUERIES)[0].distance
            )
        )
        thread.start()
        self.wait_for_inflight(server)
        stoppers = [threading.Thread(target=server.stop) for _ in range(4)]
        for s in stoppers:
            s.start()
        for s in stoppers:
            s.join(timeout=15.0)
        assert not any(s.is_alive() for s in stoppers)
        thread.join(timeout=10.0)
        with pytest.raises(OSError):
            socket.create_connection(server.address, timeout=0.5)

    def test_new_requests_during_drain_get_retry_later(self):
        server = self.make_slow_server(hold_seconds=1.0)
        host, port = server.address
        results: list = []
        thread = threading.Thread(
            target=lambda: results.append(
                Client(host, port, timeout=15.0).query(QUERIES)[0].distance
            )
        )
        thread.start()
        self.wait_for_inflight(server)
        # Connect *before* the drain starts, ask during it.
        probe = Client(host, port, timeout=5.0, retry=RetryPolicy.none())
        stopper = threading.Thread(target=server.stop)
        stopper.start()
        deadline = time.monotonic() + 5.0
        while not server.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(ServerDrainingError):
            probe.ping()
        probe.close()
        stopper.join(timeout=15.0)
        thread.join(timeout=10.0)
        assert results  # drain still completed the in-flight work

    def test_drain_completes_inflight_binary_batch(self):
        """Drain over the frame path: the in-flight binary batch gets
        its full response, and a binary probe connected before the
        drain is shed with the typed draining error."""
        server = self.make_slow_server(hold_seconds=0.8)
        host, port = server.address
        results: list = []

        def worker():
            with Client(host, port, timeout=15.0, protocol="binary") as client:
                results.append(client.query(QUERIES)[0].distance)

        thread = threading.Thread(target=worker)
        thread.start()
        self.wait_for_inflight(server)
        probe = Client(host, port, timeout=5.0, protocol="binary",
                       retry=RetryPolicy.none())
        stopper = threading.Thread(target=server.stop)
        stopper.start()
        deadline = time.monotonic() + 5.0
        while not server.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(ServerDrainingError):
            probe.ping()
        probe.close()
        stopper.join(timeout=15.0)
        thread.join(timeout=10.0)
        assert results  # the binary batch rode the drain to completion

    def test_drain_timeout_abandons_stuck_batch(self):
        server = self.make_slow_server(hold_seconds=3.0, drain_timeout=0.2)
        host, port = server.address
        thread = threading.Thread(
            target=lambda: Client(host, port, timeout=15.0).query(QUERIES)
        )
        thread.start()
        self.wait_for_inflight(server)
        start = time.monotonic()
        assert server.stop() is False  # timed out with work in flight
        assert time.monotonic() - start < 2.5  # did not wait the full batch
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)
        thread.join(timeout=10.0)  # daemon handler finishes eventually
