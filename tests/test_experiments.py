"""Tests for the experiments harness and the figure modules.

Figure modules run here with miniature configs: the point is that they
execute end to end, produce well-formed tables, and — where cheap
enough to check — show the paper's qualitative shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SixRegionConfig
from repro.errors import ParameterError
from repro.experiments.costmodel import (
    exact_comparison_cost,
    fft_preprocess_cost,
    kmeans_cost,
    sketch_build_cost,
    sketch_comparison_cost,
)
from repro.experiments.figure2 import Figure2Config
from repro.experiments.figure2 import run as run_figure2
from repro.experiments.figure3 import Figure3Config
from repro.experiments.figure3 import run as run_figure3
from repro.experiments.figure4a import Figure4aConfig
from repro.experiments.figure4a import run as run_figure4a
from repro.experiments.figure4b import Figure4bConfig
from repro.experiments.figure4b import run as run_figure4b
from repro.experiments.figure5 import Figure5Config
from repro.experiments.figure5 import run as run_figure5
from repro.experiments.harness import FigureResult, Timer, format_table


class TestHarness:
    def test_timer_measures(self):
        with Timer() as timer:
            sum(range(10000))
        assert timer.seconds >= 0.0

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ParameterError):
            format_table(["a"], [[1, 2]])

    def test_figure_result_render(self):
        result = FigureResult("T", ["x"], [[1]], notes=["n"], panels=["P"])
        text = result.render()
        assert "T" in text and "P" in text and "note: n" in text


class TestCostModel:
    def test_exact_linear_in_tile(self):
        assert exact_comparison_cost(100) == 200

    def test_sketch_independent_of_tile(self):
        assert sketch_comparison_cost(64) == 128

    def test_build_cost(self):
        assert sketch_build_cost(64, 100) == 6400

    def test_fft_cheaper_than_direct_for_large_windows(self):
        table = (512, 512)
        window = (128, 128)
        k = 64
        direct = k * table[0] * table[1] * window[0] * window[1]
        assert fft_preprocess_cost(table, window, k) < direct

    def test_kmeans_modes_ordering(self):
        exact = kmeans_cost(100, 20, 10, tile_cells=2304, k=64, mode="exact")
        pre = kmeans_cost(100, 20, 10, tile_cells=2304, k=64, mode="precomputed")
        on_demand = kmeans_cost(100, 20, 10, tile_cells=2304, k=64, mode="on-demand")
        assert pre.elements < on_demand.elements < exact.elements
        assert exact.comparisons == pre.comparisons

    def test_on_demand_overhead_constant_in_clusters(self):
        small = kmeans_cost(100, 4, 10, 2304, 64, "on-demand")
        large = kmeans_cost(100, 24, 10, 2304, 64, "on-demand")
        small_pre = kmeans_cost(100, 4, 10, 2304, 64, "precomputed")
        large_pre = kmeans_cost(100, 24, 10, 2304, 64, "precomputed")
        assert small.elements - small_pre.elements == large.elements - large_pre.elements

    def test_validation(self):
        with pytest.raises(ParameterError):
            exact_comparison_cost(0)
        with pytest.raises(ParameterError):
            kmeans_cost(10, 2, 1, 10, 4, mode="cached")


TINY_FIG2 = Figure2Config(
    table_shape=(64, 144), tile_sides=(8, 16), n_pairs=200, k=32
)
TINY_FIG3 = Figure3Config(
    n_stations=64, n_days=1, tile_shape=(16, 36), n_clusters=5, k=32,
    ps=(0.5, 1.0, 2.0), max_iter=10,
)
TINY_FIG4A = Figure4aConfig(
    n_stations=64, n_days=1, tile_shape=(16, 36), cluster_counts=(2, 4, 8),
    k=32, max_iter=10,
)
TINY_FIG4B = Figure4bConfig(
    data=SixRegionConfig(n_rows=64, n_cols=64),
    tile_shape=(8, 8), ps=(0.5, 2.0), k=64, n_restarts=2, max_iter=15,
)
TINY_FIG5 = Figure5Config(n_stations=48, stations_per_group=8, n_clusters=4, k=32)


class TestFigure2:
    def test_runs_and_is_well_formed(self):
        results = run_figure2(TINY_FIG2)
        assert len(results) == 2  # L1 and L2 panels
        for result in results:
            assert len(result.rows) == 2
            for row in result.rows:
                assert len(row) == len(result.headers)

    def test_object_bytes_column(self):
        results = run_figure2(TINY_FIG2)
        sizes = [row[0] for row in results[0].rows]
        assert sizes == [4 * 8 * 8, 4 * 16 * 16]

    def test_accuracy_reasonable(self):
        results = run_figure2(TINY_FIG2)
        for result in results:
            for row in result.rows:
                cumulative, average, pairwise = row[4], row[5], row[6]
                assert 60.0 < cumulative < 140.0
                assert average > 60.0
                assert pairwise > 75.0

    def test_render(self):
        text = run_figure2(TINY_FIG2)[0].render()
        assert "object_bytes" in text


class TestFigure3:
    def test_runs_and_reports_all_ps(self):
        result = run_figure3(TINY_FIG3)
        assert [row[0] for row in result.rows] == [0.5, 1.0, 2.0]

    def test_quality_near_or_above_exact(self):
        result = run_figure3(TINY_FIG3)
        for row in result.rows:
            assert row[6] > 60.0  # quality_% column

    def test_agreement_bounded(self):
        result = run_figure3(TINY_FIG3)
        for row in result.rows:
            assert 0.0 <= row[5] <= 100.0


class TestFigure4a:
    def test_runs_all_cluster_counts(self):
        result = run_figure4a(TINY_FIG4A)
        assert [row[0] for row in result.rows] == [2, 4, 8]

    def test_times_positive(self):
        result = run_figure4a(TINY_FIG4A)
        for row in result.rows:
            assert all(t > 0 for t in row[1:])


class TestFigure4b:
    def test_fractional_p_beats_p2(self):
        result = run_figure4b(TINY_FIG4B)
        accuracy = {row[0]: row[1] for row in result.rows}
        assert accuracy[0.5] > accuracy[2.0]

    def test_fractional_p_recovers_planting(self):
        # The tiny smoke config uses 64-cell tiles, so the recovery is
        # noisier than the default config's 100%; assert the shape only.
        result = run_figure4b(TINY_FIG4B)
        accuracy = {row[0]: row[1] for row in result.rows}
        assert accuracy[0.5] >= 80.0


class TestAblations:
    def make_results(self):
        from repro.experiments.ablations import AblationConfig, run

        config = AblationConfig(
            tile_shape=(8, 8), sketch_sizes=(8, 64), n_draws=4,
            summary_size=16, pool_k=64,
        )
        return run(config)

    def test_four_studies(self):
        results = self.make_results()
        assert len(results) == 4
        for result in results:
            assert result.rows

    def test_sketch_size_error_shrinks(self):
        results = self.make_results()
        rows = results[0].rows
        assert rows[-1][2] < rows[0][2]  # error at k=64 < error at k=8

    def test_transforms_lose_at_l1(self):
        results = self.make_results()
        l1_row = next(row for row in results[2].rows if row[0] == 1.0)
        sketch_error = l1_row[1]
        transform_errors = l1_row[2:]
        assert all(sketch_error < err for err in transform_errors)

    def test_composition_ratios_in_bands(self):
        results = self.make_results()
        ratios = {row[0]: row[1] for row in results[3].rows}
        assert 0.5 < ratios["direct"] < 1.5
        assert 0.5 < ratios["compound (Defn 4)"] < 5.5
        assert 0.5 < ratios["disjoint (ours)"] < 1.5


class TestFigure5:
    def test_panels_render(self):
        result = run_figure5(TINY_FIG5)
        assert len(result.panels) == 2
        for panel, p in zip(result.panels, TINY_FIG5.ps):
            assert f"p = {p:g}" in panel

    def test_panel_grid_dimensions(self):
        result = run_figure5(TINY_FIG5)
        lines = result.panels[0].splitlines()
        # title + header + one line per station group
        assert len(lines) == 2 + 48 // 8

    def test_blank_is_most_common_shade(self):
        result = run_figure5(TINY_FIG5)
        body = "".join(
            line[5:] for line in result.panels[0].splitlines()[2:]
        )
        blanks = body.count(" ")
        for shade in set(body) - {" "}:
            assert body.count(shade) <= blanks
