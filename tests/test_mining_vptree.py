"""Tests for repro.mining.vptree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExactLpOracle, PrecomputedSketchOracle, SketchGenerator
from repro.errors import ParameterError
from repro.mining import VPTree, nearest_neighbors


def random_tiles(n=40, shape=(4, 4), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=shape) for _ in range(n)]


class TestExactness:
    @pytest.mark.parametrize("p", [1.0, 2.0])
    def test_matches_brute_force(self, p):
        tiles = random_tiles(seed=1)
        oracle = ExactLpOracle(tiles, p=p)
        tree = VPTree(oracle, leaf_size=4, seed=0)
        for query in (0, 7, 25):
            tree_hits = tree.nearest(query, 3)
            brute_hits = nearest_neighbors(ExactLpOracle(tiles, p=p), query, 3)
            assert [i for i, _ in tree_hits] == [i for i, _ in brute_hits]

    def test_single_neighbor(self):
        tiles = random_tiles(n=10, seed=2)
        tiles[7] = tiles[3] + 0.001
        oracle = ExactLpOracle(tiles, p=2.0)
        tree = VPTree(oracle, leaf_size=2, seed=0)
        assert tree.nearest(3, 1)[0][0] == 7

    def test_results_sorted(self):
        oracle = ExactLpOracle(random_tiles(seed=3), p=1.0)
        tree = VPTree(oracle, seed=0)
        hits = tree.nearest(0, 5)
        distances = [d for _, d in hits]
        assert distances == sorted(distances)

    def test_tiny_collections(self):
        oracle = ExactLpOracle(random_tiles(n=2, seed=4), p=1.0)
        tree = VPTree(oracle)
        assert tree.nearest(0, 1)[0][0] == 1

    def test_duplicate_heavy_data(self):
        """Many identical items force degenerate splits; the tree must
        fall back to leaves and stay correct."""
        tiles = [np.ones((2, 2))] * 12 + [np.zeros((2, 2))]
        oracle = ExactLpOracle(tiles, p=1.0)
        tree = VPTree(oracle, leaf_size=2, seed=0)
        hits = tree.nearest(12, 1)
        assert hits[0][1] > 0  # nearest to the zero tile is a ones tile


class TestPruning:
    def test_prunes_on_low_dimensional_data(self):
        """Pruning pays off when distances have low intrinsic dimension
        (high-dimensional Gaussian data concentrates distances and
        defeats *any* metric tree — that is expected, not a bug)."""
        rng = np.random.default_rng(5)
        base = rng.normal(size=(4, 4))
        direction = rng.normal(size=(4, 4))
        tiles = [base + t * direction for t in np.sort(rng.uniform(0, 100, 400))]
        oracle = ExactLpOracle(tiles, p=2.0)
        tree = VPTree(oracle, leaf_size=8, seed=0)
        oracle.stats.reset()
        tree.nearest(200, 1)
        # Brute force would need n-1 = 399 comparisons.
        assert oracle.stats.comparisons < 200

    def test_pruned_search_still_exact(self):
        rng = np.random.default_rng(6)
        base = rng.normal(size=(4, 4))
        direction = rng.normal(size=(4, 4))
        ts = rng.uniform(0, 100, 100)
        tiles = [base + t * direction for t in ts]
        oracle = ExactLpOracle(tiles, p=2.0)
        tree = VPTree(oracle, leaf_size=4, seed=1)
        for query in (0, 33, 99):
            tree_hits = [i for i, _ in tree.nearest(query, 2)]
            brute = [i for i, _ in nearest_neighbors(ExactLpOracle(tiles, p=2.0), query, 2)]
            assert tree_hits == brute


class TestSketchedOracles:
    def test_high_recall_with_slack(self):
        tiles = random_tiles(n=50, shape=(8, 8), seed=6)
        gen = SketchGenerator(p=1.0, k=128, seed=1)
        sketched = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        tree = VPTree(sketched, leaf_size=4, slack=0.4, seed=0)
        hit_count = 0
        for query in range(10):
            tree_top = {i for i, _ in tree.nearest(query, 3)}
            scan_top = {i for i, _ in nearest_neighbors(sketched, query, 3)}
            hit_count += len(tree_top & scan_top)
        assert hit_count >= 24  # >= 80% recall against a full scan


class TestValidation:
    def test_fractional_p_rejected(self):
        oracle = ExactLpOracle(random_tiles(n=5, seed=7), p=0.5)
        with pytest.raises(ParameterError):
            VPTree(oracle)

    def test_fractional_p_opt_in(self):
        oracle = ExactLpOracle(random_tiles(n=5, seed=7), p=0.5)
        tree = VPTree(oracle, unsafe_fractional_p=True)
        assert len(tree.nearest(0, 2)) == 2

    def test_bad_parameters(self):
        oracle = ExactLpOracle(random_tiles(n=5, seed=8), p=1.0)
        with pytest.raises(ParameterError):
            VPTree(oracle, leaf_size=0)
        with pytest.raises(ParameterError):
            VPTree(oracle, slack=-0.1)

    def test_bad_queries(self):
        oracle = ExactLpOracle(random_tiles(n=5, seed=9), p=1.0)
        tree = VPTree(oracle)
        with pytest.raises(ParameterError):
            tree.nearest(9, 1)
        with pytest.raises(ParameterError):
            tree.nearest(0, 5)
