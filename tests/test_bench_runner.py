"""Tests for the continuous benchmark harness (``repro bench``).

The actual suites are exercised by CI's bench-smoke job; here the
harness mechanics — percentile math, trajectory files, the regression
gate and its exit codes — run against fast fakes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.bench.runner as runner
from repro.bench import (
    BenchResult,
    compare_to_baseline,
    git_sha,
    machine_fingerprint,
    percentiles,
    run_benchmarks,
)
from repro.bench.runner import _timed_batches, append_trajectory
from repro.errors import ParameterError


def fake_result(suite="serving", p50=0.01, p99=0.02, gate_metric="p99",
                extras=None, trajectory=None):
    return BenchResult(
        suite=suite,
        workload={"queries": 10},
        latency_seconds={"count": 10, "mean": p50, "min": p50, "max": p99,
                         "p50": p50, "p90": p99, "p99": p99},
        extras=extras if extras is not None else {
            "quality_overhead": {"sample_rate": 0.01, "fraction": 0.01,
                                 "checks": 3},
        },
        gate_metric=gate_metric,
        trajectory=trajectory,
    )


class TestPercentiles:
    def test_empty_is_all_zero(self):
        stats = percentiles([])
        assert stats["count"] == 0
        assert stats["p50"] == stats["p99"] == stats["mean"] == 0.0
        assert stats["min"] == stats["max"] == 0.0

    def test_known_values(self):
        stats = percentiles(range(1, 101))
        assert stats["count"] == 100
        assert stats["mean"] == pytest.approx(50.5)
        assert stats["min"] == 1.0
        assert stats["max"] == 100.0
        assert stats["p50"] == pytest.approx(50.5)
        assert stats["p99"] >= stats["p90"] >= stats["p50"]


class TestFingerprints:
    def test_machine_fingerprint_fields(self):
        fingerprint = machine_fingerprint()
        assert fingerprint["python"]
        assert fingerprint["platform"]
        assert fingerprint["cpu_count"] >= 1

    def test_git_sha_resolves_in_this_repo(self):
        sha = git_sha(Path(__file__).parent)
        assert sha is None or (len(sha) >= 7 and all(
            c in "0123456789abcdef" for c in sha
        ))

    def test_git_sha_none_outside_a_repo(self, tmp_path):
        assert git_sha(tmp_path) is None


class TestBenchResult:
    def test_gate_value_follows_gate_metric(self):
        result = fake_result(p50=0.01, p99=0.05, gate_metric="p50")
        assert result.gate_value == 0.01
        assert result.p99 == 0.05

    def test_entry_shape(self):
        entry = fake_result().entry()
        assert entry["suite"] == "serving"
        assert "machine" in entry and "timestamp" in entry
        assert entry["latency_seconds"]["p99"] == 0.02
        assert "quality_overhead" in entry  # extras merge into the entry


class TestTrajectory:
    def test_append_creates_and_accumulates(self, tmp_path):
        path = tmp_path / "BENCH_serving.json"
        assert len(append_trajectory(path, {"run": 1})) == 1
        assert len(append_trajectory(path, {"run": 2})) == 2
        history = json.loads(path.read_text())
        assert [e["run"] for e in history] == [1, 2]

    def test_corrupt_file_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH_serving.json"
        path.write_text("not json")
        assert len(append_trajectory(path, {"run": 1})) == 1


class TestCompareToBaseline:
    def test_missing_baseline_never_regresses(self):
        verdict = compare_to_baseline(fake_result(), {})
        assert verdict["regressed"] is False
        assert verdict["baseline"] is None and verdict["ratio"] is None

    def test_within_tolerance_is_ok(self):
        baseline = {"serving": {"p99": 0.02}}
        verdict = compare_to_baseline(fake_result(p99=0.023), baseline,
                                      max_regress=0.2)
        assert verdict["regressed"] is False
        assert verdict["ratio"] == pytest.approx(1.15)

    def test_beyond_tolerance_regresses(self):
        baseline = {"serving": {"p99": 0.02}}
        verdict = compare_to_baseline(fake_result(p99=0.03), baseline,
                                      max_regress=0.2)
        assert verdict["regressed"] is True

    def test_gate_metric_selects_the_compared_percentile(self):
        baseline = {"pipeline": {"p50": 0.01, "p99": 1e-9}}
        result = fake_result(suite="pipeline", p50=0.011, p99=5.0,
                             gate_metric="p50")
        verdict = compare_to_baseline(result, baseline)
        assert verdict["metric"] == "p50"
        assert verdict["regressed"] is False

    def test_suite_gate_tolerance_overrides_max_regress(self):
        baseline = {"serving": {"p99": 0.02}}
        wide = fake_result(p99=0.035)
        wide.gate_tolerance = 1.0
        verdict = compare_to_baseline(wide, baseline, max_regress=0.2)
        assert verdict["regressed"] is False  # 1.75x, inside the 2x allowance
        worse = fake_result(p99=0.05)
        worse.gate_tolerance = 1.0
        assert compare_to_baseline(worse, baseline,
                                   max_regress=0.2)["regressed"] is True

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ParameterError):
            compare_to_baseline(fake_result(), {}, max_regress=-0.1)


class TestTimedBatches:
    def test_keeps_the_minimum_across_rounds(self):
        class CountingEngine:
            def __init__(self):
                self.calls = 0

            def query(self, batch):
                self.calls += 1

        engine = CountingEngine()
        queries = list(range(120))  # 3 batches of _BATCH=50 (last short)
        samples = _timed_batches(engine, queries, rounds=4)
        assert len(samples) == 3
        assert engine.calls == 12
        assert all(s >= 0.0 and s != float("inf") for s in samples)


class TestRunBenchmarks:
    @pytest.fixture()
    def fakes(self, monkeypatch):
        def fake_serving(quick=False):
            return fake_result("serving", p50=0.01, p99=0.02)

        def fake_pipeline(quick=False):
            return fake_result("pipeline", p50=0.03, p99=0.04,
                               gate_metric="p50", extras={})

        def fake_sharded(quick=False):
            # Mirrors the real suite: min-gated, shares the serving
            # trajectory file, reports topology extras.
            return fake_result("serving-sharded", p50=0.05, p99=0.06,
                               gate_metric="min", trajectory="serving",
                               extras={"workers": 2, "cpu_count": 1,
                                       "qps_single_worker": 100.0,
                                       "qps_sharded": 120.0,
                                       "qps_speedup": 1.2,
                                       "shards_healthy": 2})

        def fake_ingest(quick=False):
            # p50-gated like the real suite; empty modes exercise the
            # reporting defaults.
            return fake_result("ingest", p50=0.07, p99=0.08,
                               gate_metric="p50", extras={"modes": {}})

        monkeypatch.setitem(runner._SUITE_RUNNERS, "serving", fake_serving)
        monkeypatch.setitem(runner._SUITE_RUNNERS, "pipeline", fake_pipeline)
        monkeypatch.setitem(runner._SUITE_RUNNERS, "serving-sharded",
                            fake_sharded)
        monkeypatch.setitem(runner._SUITE_RUNNERS, "ingest", fake_ingest)

    def test_unknown_suite_rejected(self, tmp_path):
        with pytest.raises(ParameterError, match="unknown bench suite"):
            run_benchmarks(suites=["warp"], out_dir=tmp_path)

    def test_appends_trajectories_and_reports(self, fakes, tmp_path):
        lines = []
        code = run_benchmarks(out_dir=tmp_path, echo=lines.append)
        assert code == 0
        # serving-sharded appends to the serving trajectory: one ledger
        # per serving topology family, no BENCH_serving-sharded.json.
        serving = json.loads((tmp_path / "BENCH_serving.json").read_text())
        assert [e["suite"] for e in serving] == ["serving", "serving-sharded"]
        pipeline = json.loads((tmp_path / "BENCH_pipeline.json").read_text())
        assert len(pipeline) == 1 and pipeline[0]["suite"] == "pipeline"
        assert not (tmp_path / "BENCH_serving-sharded.json").exists()
        assert any("[no baseline]" in line for line in lines)
        assert any("quality overhead" in line for line in lines)
        assert any("workers" in line for line in lines)

    def test_rebaseline_writes_the_baseline_file(self, fakes, tmp_path):
        run_benchmarks(out_dir=tmp_path, rebaseline=True, echo=lambda s: None)
        baseline = json.loads((tmp_path / "BENCH_baseline.json").read_text())
        assert baseline["serving"]["p99"] == 0.02
        assert baseline["pipeline"]["p50"] == 0.03
        # The sharded suite gates on min; the baseline must carry it.
        assert baseline["serving-sharded"]["min"] == 0.05

    def test_gate_passes_against_its_own_baseline(self, fakes, tmp_path):
        run_benchmarks(out_dir=tmp_path, rebaseline=True, echo=lambda s: None)
        assert run_benchmarks(out_dir=tmp_path, gate=True,
                              echo=lambda s: None) == 0

    def test_gate_fails_on_a_regression(self, fakes, tmp_path):
        baseline = {"serving": {"p99": 0.001, "p50": 0.0005}}
        path = tmp_path / "BENCH_baseline.json"
        path.write_text(json.dumps(baseline))
        lines = []
        code = run_benchmarks(suites=["serving"], out_dir=tmp_path,
                              gate=True, echo=lines.append)
        assert code == 2
        assert any("REGRESSED" in line for line in lines)

    def test_regression_without_gate_still_exits_zero(self, fakes, tmp_path):
        path = tmp_path / "BENCH_baseline.json"
        path.write_text(json.dumps({"serving": {"p99": 0.001}}))
        assert run_benchmarks(suites=["serving"], out_dir=tmp_path,
                              echo=lambda s: None) == 0
