"""Tests for repro.shard.ring: consistent hashing and placement overrides."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.shard import HashRing, ShardMap

NODES = ["s0", "s1", "s2"]
KEYS = [f"table-{i}" for i in range(200)]


class TestHashRing:
    def test_owner_is_always_a_node(self):
        ring = HashRing(NODES)
        assert all(ring.owner(key) in NODES for key in KEYS)

    def test_placement_is_deterministic_across_instances(self):
        a = HashRing(NODES)
        b = HashRing(list(NODES))  # a fresh, independent ring
        assert [a.owner(key) for key in KEYS] == [b.owner(key) for key in KEYS]

    def test_node_order_does_not_change_placement(self):
        # Placement must depend on the *names*, not fleet order, so a
        # restarted router with a reordered config keeps the page caches
        # of every worker warm.
        forward = HashRing(NODES)
        backward = HashRing(list(reversed(NODES)))
        assert [forward.owner(k) for k in KEYS] == [backward.owner(k) for k in KEYS]

    def test_distribution_counts_every_key_and_every_node(self):
        ring = HashRing(NODES)
        counts = ring.distribution(KEYS)
        assert set(counts) == set(NODES)
        assert sum(counts.values()) == len(KEYS)

    def test_distribution_is_roughly_balanced(self):
        # 64 virtual points per node keeps the spread loose but real:
        # no node should own almost everything or almost nothing.
        counts = HashRing(NODES, replicas=64).distribution(KEYS)
        assert min(counts.values()) > 0
        assert max(counts.values()) < 0.8 * len(KEYS)

    def test_removing_a_node_only_moves_its_own_keys(self):
        # The consistent-hashing contract: keys owned by surviving
        # nodes stay put when a node leaves.
        full = HashRing(NODES)
        reduced = HashRing(["s0", "s1"])
        for key in KEYS:
            if full.owner(key) != "s2":
                assert reduced.owner(key) == full.owner(key)

    def test_single_node_owns_everything(self):
        ring = HashRing(["solo"])
        assert ring.distribution(KEYS) == {"solo": len(KEYS)}

    def test_empty_ring_rejected(self):
        with pytest.raises(ParameterError, match="at least one node"):
            HashRing([])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ParameterError, match="duplicate"):
            HashRing(["a", "b", "a"])

    def test_bad_replica_count_rejected(self):
        with pytest.raises(ParameterError, match="replicas"):
            HashRing(NODES, replicas=0)

    def test_bad_node_names_rejected(self):
        with pytest.raises(ParameterError):
            HashRing(["ok", ""])


class TestShardMap:
    def test_falls_back_to_the_ring(self):
        placement = ShardMap(NODES)
        ring = HashRing(NODES)
        assert all(placement.owner_of(k) == ring.owner(k) for k in KEYS[:20])

    def test_override_wins_over_the_ring(self):
        ring = HashRing(NODES)
        hot = KEYS[0]
        elsewhere = next(n for n in NODES if n != ring.owner(hot))
        placement = ShardMap(NODES, overrides={hot: elsewhere})
        assert placement.owner_of(hot) == elsewhere
        # Everything unpinned still follows the ring.
        assert all(placement.owner_of(k) == ring.owner(k) for k in KEYS[1:20])

    def test_override_to_unknown_shard_rejected(self):
        with pytest.raises(ParameterError, match="not in shards"):
            ShardMap(NODES, overrides={"hot": "ghost"})

    def test_as_dict_is_json_safe_and_complete(self):
        placement = ShardMap(NODES, overrides={"hot": "s1"}, replicas=8)
        described = placement.as_dict()
        assert described == {
            "shards": NODES,
            "replicas": 8,
            "overrides": {"hot": "s1"},
        }

    def test_shards_property_preserves_fleet_order(self):
        assert ShardMap(["z", "a", "m"]).shards == ("z", "a", "m")
