"""Tests for the six-region planted-clustering generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SixRegionConfig, generate_six_region, tile_truth_labels
from repro.data.synthetic import region_row_ranges
from repro.errors import ParameterError
from repro.table import TileGrid


class TestRegionLayout:
    def test_fractions(self):
        ranges = region_row_ranges(256)
        sizes = [end - start for start, end in ranges]
        assert sizes == [64, 64, 64, 32, 16, 16]

    def test_ranges_cover_table(self):
        ranges = region_row_ranges(64)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 64
        for (_, end_a), (start_b, _) in zip(ranges, ranges[1:]):
            assert end_a == start_b


class TestGeneration:
    def test_shape_and_labels(self):
        table, rows = generate_six_region(SixRegionConfig(n_rows=64, n_cols=32))
        assert table.shape == (64, 32)
        assert rows.shape == (64,)
        assert set(rows.tolist()) == {0, 1, 2, 3, 4, 5}

    def test_region_means_ordered(self):
        config = SixRegionConfig(n_rows=128, n_cols=64, outlier_fraction=0.0)
        table, rows = generate_six_region(config)
        region_means = [table.values[rows == r].mean() for r in range(6)]
        np.testing.assert_allclose(region_means, config.means, rtol=0.02)

    def test_outlier_count(self):
        config = SixRegionConfig(n_rows=64, n_cols=64, outlier_fraction=0.01)
        table, _rows = generate_six_region(config)
        low, high = config.means[0] - config.half_width, config.means[-1] + config.half_width
        outliers = np.sum((table.values < low) | (table.values > high))
        expected = round(0.01 * table.values.size)
        # Some "low" outliers can fall inside region ranges; allow slack.
        assert 0.3 * expected <= outliers <= expected

    def test_no_outliers_when_fraction_zero(self):
        config = SixRegionConfig(n_rows=64, n_cols=16, outlier_fraction=0.0)
        table, rows = generate_six_region(config)
        for region in range(6):
            block = table.values[rows == region]
            assert block.min() >= config.means[region] - config.half_width
            assert block.max() <= config.means[region] + config.half_width

    def test_deterministic(self):
        a, _ = generate_six_region(SixRegionConfig(n_rows=32, n_cols=16))
        b, _ = generate_six_region(SixRegionConfig(n_rows=32, n_cols=16))
        np.testing.assert_array_equal(a.values, b.values)


class TestTileTruth:
    def test_exact_when_tiles_divide_bands(self):
        config = SixRegionConfig(n_rows=128, n_cols=64)
        table, rows = generate_six_region(config)
        grid = TileGrid(table.shape, (8, 8))  # 8 divides every band height
        truth = tile_truth_labels(grid, rows)
        assert truth.shape == (len(grid),)
        for index, spec in enumerate(grid):
            assert np.all(rows[spec.row : spec.end_row] == truth[index])

    def test_majority_when_tiles_straddle(self):
        rows = np.array([0] * 6 + [1] * 2)
        grid = TileGrid((8, 4), (8, 4))
        truth = tile_truth_labels(grid, rows)
        assert truth.tolist() == [0]

    def test_row_labels_too_short(self):
        grid = TileGrid((8, 4), (2, 2))
        with pytest.raises(ParameterError):
            tile_truth_labels(grid, np.zeros(4, dtype=int))


class TestValidation:
    def test_rows_not_multiple_of_16(self):
        with pytest.raises(ParameterError):
            SixRegionConfig(n_rows=100)

    def test_duplicate_means(self):
        with pytest.raises(ParameterError):
            SixRegionConfig(means=(1.0, 1.0, 2.0, 3.0, 4.0, 5.0))

    def test_bad_outlier_fraction(self):
        with pytest.raises(ParameterError):
            SixRegionConfig(outlier_fraction=1.0)

    def test_bad_half_width(self):
        with pytest.raises(ParameterError):
            SixRegionConfig(half_width=0.0)
