"""Shared test configuration: deterministic randomness everywhere.

Two sources of nondeterminism threaten tier-1:

* **Hypothesis.**  By default hypothesis draws fresh random examples
  every run, so a property test can pass 99 runs and fail the 100th on
  an example nobody can reproduce without the printed seed.  The
  ``deterministic`` profile below (the default) sets
  ``derandomize=True``: examples are derived from each test's source,
  so every run of the same code explores the same inputs.  Developers
  hunting for *new* counterexamples can opt back into randomness with
  ``HYPOTHESIS_PROFILE=explore pytest ...``.

* **Statistical tests.**  Monte Carlo assertions (sampler laws,
  estimator accuracy) all draw from explicitly seeded
  ``np.random.default_rng(seed)`` generators — the audit below is
  enforced here so a regression cannot creep back in.  Given the fixed
  seeds those tests are fully deterministic; their tolerances are
  chosen so that the *a priori* failure probability (the chance a fresh
  seed would land outside the band) is documented in each test file,
  typically below 1e-6.

The seeded-rng audit itself lives in ``test_determinism.py`` (conftest
modules are not collected): no test module may call ``np.random.<dist>``
through the legacy global generator.  ``np.random.default_rng`` and
``np.random.Generator`` are the only sanctioned entry points.
"""

from __future__ import annotations

import os

from hypothesis import settings

# One deterministic profile for tier-1/CI, one exploratory for bug
# hunting.  deadline=None matches the repo's historical settings: CI
# machines are noisy and per-example deadlines flake.
settings.register_profile("deterministic", derandomize=True, deadline=None)
settings.register_profile("explore", derandomize=False, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "deterministic"))
