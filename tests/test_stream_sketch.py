"""Tests for repro.stream: turnstile sketch maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import lp_distance, lp_norm
from repro.errors import IncompatibleSketchError, ParameterError, ShapeError
from repro.stream import StreamingSketch


def make(p=1.0, k=64, shape=(8, 8), seed=0):
    return StreamingSketch(p, k, shape, seed=seed)


class TestConstruction:
    def test_bad_p(self):
        with pytest.raises(ParameterError):
            StreamingSketch(0.0, 4, (2, 2))
        with pytest.raises(ParameterError):
            StreamingSketch(2.5, 4, (2, 2))

    def test_bad_k(self):
        with pytest.raises(ParameterError):
            StreamingSketch(1.0, 0, (2, 2))

    def test_bad_shape(self):
        with pytest.raises(ShapeError):
            StreamingSketch(1.0, 4, (0, 2))

    def test_fresh_sketch_is_zero(self):
        sketch = make()
        np.testing.assert_array_equal(sketch.values, np.zeros(64))
        assert sketch.estimate_norm() == 0.0


class TestUpdateSemantics:
    def test_update_out_of_bounds(self):
        with pytest.raises(ParameterError):
            make(shape=(4, 4)).update(4, 0, 1.0)
        with pytest.raises(ParameterError):
            make(shape=(4, 4)).update(0, -1, 1.0)

    def test_order_independent(self):
        updates = [(0, 0, 1.0), (1, 2, -3.0), (3, 3, 0.5), (0, 0, 2.0)]
        a = make()
        b = make()
        for row, col, delta in updates:
            a.update(row, col, delta)
        for row, col, delta in reversed(updates):
            b.update(row, col, delta)
        np.testing.assert_allclose(a.values, b.values, atol=1e-12)

    def test_increment_then_decrement_cancels(self):
        sketch = make()
        sketch.update(2, 3, 5.0)
        sketch.update(2, 3, -5.0)
        np.testing.assert_allclose(sketch.values, np.zeros(64), atol=1e-12)

    def test_split_update_equals_single(self):
        a = make()
        a.update(1, 1, 7.0)
        b = make()
        b.update(1, 1, 3.0)
        b.update(1, 1, 4.0)
        np.testing.assert_allclose(a.values, b.values, atol=1e-12)

    def test_update_many_equals_loop(self):
        a = make()
        a.update_many([0, 1, 2], [3, 2, 1], [1.0, 2.0, 3.0])
        b = make()
        for row, col, delta in [(0, 3, 1.0), (1, 2, 2.0), (2, 1, 3.0)]:
            b.update(row, col, delta)
        np.testing.assert_allclose(a.values, b.values, atol=1e-12)

    def test_update_many_validation(self):
        with pytest.raises(ParameterError):
            make().update_many([0, 1], [0], [1.0, 2.0])

    def test_updates_counted(self):
        sketch = make()
        sketch.update_many([0, 1], [0, 1], [1.0, 1.0])
        assert sketch.updates_processed == 2

    def test_deterministic_across_instances(self):
        a = make(seed=5)
        b = make(seed=5)
        a.update(3, 4, 2.0)
        b.update(3, 4, 2.0)
        np.testing.assert_array_equal(a.values, b.values)


class TestFromArray:
    def test_equals_update_path(self):
        rng = np.random.default_rng(1)
        array = rng.normal(size=(6, 6))
        bulk = StreamingSketch.from_array(array, p=1.0, k=32, seed=2)
        manual = StreamingSketch(1.0, 32, (6, 6), seed=2)
        for row in range(6):
            for col in range(6):
                manual.update(row, col, array[row, col])
        np.testing.assert_allclose(bulk.values, manual.values, atol=1e-9)

    def test_zero_cells_skipped(self):
        array = np.zeros((4, 4))
        array[1, 1] = 3.0
        sketch = StreamingSketch.from_array(array, p=1.0, k=16)
        assert sketch.updates_processed == 1

    def test_bad_array(self):
        with pytest.raises(ShapeError):
            StreamingSketch.from_array(np.zeros(4), p=1.0, k=4)


class TestEstimation:
    @pytest.mark.parametrize("p", [0.5, 1.0, 2.0])
    def test_norm_estimate_tracks_lp_norm(self, p):
        rng = np.random.default_rng(3)
        array = rng.normal(size=(8, 8))
        sketch = StreamingSketch.from_array(array, p=p, k=512, seed=4)
        exact = lp_norm(array, p)
        assert abs(sketch.estimate_norm() - exact) / exact < 0.3

    @pytest.mark.parametrize("p", [0.5, 1.0, 2.0])
    def test_distance_estimate_tracks_lp_distance(self, p):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(8, 8))
        y = x + rng.normal(size=(8, 8)) * 0.5
        a = StreamingSketch.from_array(x, p=p, k=512, seed=6)
        b = StreamingSketch.from_array(y, p=p, k=512, seed=6)
        exact = lp_distance(x, y, p)
        assert abs(a.estimate_distance(b) - exact) / exact < 0.3

    def test_distance_to_self_zero(self):
        array = np.random.default_rng(7).normal(size=(4, 4))
        a = StreamingSketch.from_array(array, p=1.0, k=32, seed=8)
        b = StreamingSketch.from_array(array, p=1.0, k=32, seed=8)
        assert a.estimate_distance(b) == 0.0


class TestMergeability:
    def test_merged_equals_combined_stream(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(6, 6))
        y = rng.normal(size=(6, 6))
        a = StreamingSketch.from_array(x, p=1.0, k=64, seed=10)
        b = StreamingSketch.from_array(y, p=1.0, k=64, seed=10)
        combined = StreamingSketch.from_array(x + y, p=1.0, k=64, seed=10)
        np.testing.assert_allclose(a.merged(b).values, combined.values, atol=1e-9)

    def test_merged_counts_updates(self):
        a = make()
        b = make()
        a.update(0, 0, 1.0)
        b.update(1, 1, 1.0)
        assert a.merged(b).updates_processed == 2

    def test_incompatible_rejected(self):
        a = make(seed=0)
        b = make(seed=1)
        with pytest.raises(IncompatibleSketchError):
            a.estimate_distance(b)
        with pytest.raises(IncompatibleSketchError):
            a.merged(b)

    def test_shape_mismatch_rejected(self):
        a = make(shape=(4, 4))
        b = make(shape=(4, 5))
        with pytest.raises(IncompatibleSketchError):
            a.estimate_distance(b)

    def test_different_k_rejected(self):
        a = StreamingSketch(1.0, 16, (4, 4))
        b = StreamingSketch(1.0, 32, (4, 4))
        with pytest.raises(IncompatibleSketchError):
            a.estimate_distance(b)


class TestDistributedScenario:
    def test_two_collectors_one_sketch(self):
        """Two collection sites each see part of the traffic; merging
        their sketches equals sketching the total table."""
        rng = np.random.default_rng(11)
        total = rng.poisson(10.0, size=(8, 8)).astype(float)
        site_a = np.where(rng.random((8, 8)) < 0.5, total, 0.0)
        site_b = total - site_a
        a = StreamingSketch.from_array(site_a, p=1.0, k=128, seed=12)
        b = StreamingSketch.from_array(site_b, p=1.0, k=128, seed=12)
        direct = StreamingSketch.from_array(total, p=1.0, k=128, seed=12)
        np.testing.assert_allclose(a.merged(b).values, direct.values, atol=1e-9)
