"""Tests for repro.table.linearize: space-filling curve orderings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.table.linearize import (
    hilbert_order,
    locality_score,
    morton_order,
    snake_order,
)


def grid_points(side=16):
    xs, ys = np.meshgrid(np.arange(side), np.arange(side))
    return np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)


class TestMorton:
    def test_is_permutation(self):
        points = grid_points(8)
        order = morton_order(points)
        assert sorted(order.tolist()) == list(range(len(points)))

    def test_small_grid_known_sequence(self):
        # 2x2 grid: Z-order visits (0,0), (0,1), (1,0), (1,1) by
        # interleaved code (x bit low, y bit high).
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        order = morton_order(points, bits=1)
        np.testing.assert_array_equal(order, [0, 1, 2, 3])

    def test_beats_random_order_on_locality(self):
        points = grid_points(16)
        rng = np.random.default_rng(0)
        random_order = rng.permutation(len(points))
        assert locality_score(points, morton_order(points)) < locality_score(
            points, random_order
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            morton_order(np.zeros((0, 2)))
        with pytest.raises(ParameterError):
            morton_order(np.zeros((4, 3)))
        with pytest.raises(ParameterError):
            morton_order(grid_points(2), bits=0)


class TestHilbert:
    def test_is_permutation(self):
        points = grid_points(8)
        order = hilbert_order(points)
        assert sorted(order.tolist()) == list(range(len(points)))

    def test_consecutive_cells_adjacent_on_exact_grid(self):
        """The defining Hilbert property: each step moves one cell."""
        side = 8
        points = grid_points(side)
        order = hilbert_order(points, bits=3)  # exact 8x8 grid
        walked = points[order]
        steps = np.abs(np.diff(walked, axis=0)).sum(axis=1)
        np.testing.assert_array_equal(steps, np.ones(len(points) - 1))

    def test_at_least_as_local_as_morton(self):
        points = grid_points(16)
        hilbert = locality_score(points, hilbert_order(points, bits=4))
        morton = locality_score(points, morton_order(points, bits=4))
        assert hilbert <= morton

    def test_degenerate_identical_points(self):
        points = np.ones((5, 2))
        order = hilbert_order(points)
        assert sorted(order.tolist()) == list(range(5))


class TestSnake:
    def test_is_permutation(self):
        order = snake_order(4, 5)
        assert sorted(order.tolist()) == list(range(20))

    def test_boustrophedon(self):
        order = snake_order(2, 3)
        np.testing.assert_array_equal(order, [0, 1, 2, 5, 4, 3])

    def test_consecutive_are_grid_neighbours(self):
        rows, cols = 5, 7
        order = snake_order(rows, cols)
        coords = np.stack(np.divmod(order, cols), axis=1)
        steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
        np.testing.assert_array_equal(steps, np.ones(rows * cols - 1))

    def test_validation(self):
        with pytest.raises(ParameterError):
            snake_order(0, 3)


class TestLocalityScore:
    def test_zero_for_single_point(self):
        assert locality_score(np.zeros((1, 2)), [0]) == 0.0

    def test_rejects_non_permutation(self):
        points = grid_points(2)
        with pytest.raises(ParameterError):
            locality_score(points, [0, 0, 1, 2])
        with pytest.raises(ParameterError):
            locality_score(points, [0, 1])
