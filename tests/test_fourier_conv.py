"""Tests for repro.fourier.conv: FFT convolution and sliding dot products."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, ShapeError
from repro.fourier import (
    SpectrumCache,
    convolve2d_full,
    cross_correlate2d_direct,
    cross_correlate2d_valid,
    cross_correlate2d_valid_batch,
)


def random_array(shape, seed):
    return np.random.default_rng(seed).normal(size=shape)


class TestFullConvolution:
    def test_identity_kernel(self):
        data = random_array((5, 7), 0)
        kernel = np.array([[1.0]])
        np.testing.assert_allclose(convolve2d_full(data, kernel), data, atol=1e-10)

    def test_shape(self):
        out = convolve2d_full(random_array((6, 9), 1), random_array((3, 4), 2))
        assert out.shape == (8, 12)

    def test_commutativity(self):
        a = random_array((4, 5), 3)
        b = random_array((6, 2), 4)
        np.testing.assert_allclose(
            convolve2d_full(a, b), convolve2d_full(b, a), atol=1e-9
        )

    def test_matches_direct_small(self):
        a = random_array((3, 3), 5)
        b = random_array((2, 2), 6)
        expected = np.zeros((4, 4))
        for i in range(3):
            for j in range(3):
                for u in range(2):
                    for v in range(2):
                        expected[i + u, j + v] += a[i, j] * b[u, v]
        np.testing.assert_allclose(convolve2d_full(a, b), expected, atol=1e-10)

    def test_own_backend_matches_numpy_backend(self):
        a = random_array((7, 11), 7)
        b = random_array((4, 3), 8)
        np.testing.assert_allclose(
            convolve2d_full(a, b, backend="own"),
            convolve2d_full(a, b, backend="numpy"),
            atol=1e-9,
        )

    def test_rfft_fast_path_matches_complex_path(self):
        """Real inputs on the numpy backend take rfft2; the result must
        match the generic complex path bit-for-noise."""
        a = random_array((9, 13), 9)
        b = random_array((5, 4), 10)
        fast = convolve2d_full(a, b, backend="numpy")
        generic = convolve2d_full(a + 0j, b + 0j, backend="numpy")
        assert np.isrealobj(fast)
        np.testing.assert_allclose(fast, generic.real, atol=1e-9)

    def test_complex_inputs_stay_complex(self):
        a = random_array((4, 4), 11) + 1j * random_array((4, 4), 12)
        b = random_array((2, 2), 13)
        out = convolve2d_full(a, b)
        assert np.iscomplexobj(out)

    def test_non_2d_rejected(self):
        with pytest.raises(ShapeError):
            convolve2d_full(np.ones(3), np.ones((2, 2)))
        with pytest.raises(ShapeError):
            convolve2d_full(np.ones((2, 2)), np.ones((2, 2, 2)))


class TestValidCrossCorrelation:
    def test_shape(self):
        out = cross_correlate2d_valid(random_array((10, 12), 0), random_array((3, 5), 1))
        assert out.shape == (8, 8)

    def test_matches_direct(self):
        data = random_array((9, 11), 2)
        kernel = random_array((4, 3), 3)
        np.testing.assert_allclose(
            cross_correlate2d_valid(data, kernel),
            cross_correlate2d_direct(data, kernel),
            atol=1e-9,
        )

    def test_single_position(self):
        data = random_array((4, 6), 4)
        out = cross_correlate2d_valid(data, data)
        assert out.shape == (1, 1)
        assert abs(out[0, 0] - np.sum(data * data)) < 1e-9

    def test_each_entry_is_window_dot_product(self):
        data = random_array((6, 7), 5)
        kernel = random_array((2, 3), 6)
        out = cross_correlate2d_valid(data, kernel)
        for i in range(out.shape[0]):
            for j in range(out.shape[1]):
                window = data[i : i + 2, j : j + 3]
                assert abs(out[i, j] - np.sum(window * kernel)) < 1e-9

    def test_kernel_too_large_rejected(self):
        with pytest.raises(ShapeError):
            cross_correlate2d_valid(np.ones((3, 3)), np.ones((4, 2)))
        with pytest.raises(ShapeError):
            cross_correlate2d_direct(np.ones((3, 3)), np.ones((2, 4)))

    @given(
        data_h=st.integers(min_value=1, max_value=12),
        data_w=st.integers(min_value=1, max_value=12),
        ker_h=st.integers(min_value=1, max_value=12),
        ker_w=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_fft_equals_direct_property(self, data_h, data_w, ker_h, ker_w):
        if ker_h > data_h or ker_w > data_w:
            return
        data = random_array((data_h, data_w), data_h * 13 + data_w)
        kernel = random_array((ker_h, ker_w), ker_h * 17 + ker_w)
        np.testing.assert_allclose(
            cross_correlate2d_valid(data, kernel),
            cross_correlate2d_direct(data, kernel),
            atol=1e-8,
        )


class TestBatchCrossCorrelation:
    def assert_matches_direct(self, data, kernels, atol=1e-9, **kwargs):
        batch = cross_correlate2d_valid_batch(data, kernels, **kwargs)
        assert batch.shape == (
            kernels.shape[0],
            data.shape[0] - kernels.shape[1] + 1,
            data.shape[1] - kernels.shape[2] + 1,
        )
        for index in range(kernels.shape[0]):
            np.testing.assert_allclose(
                batch[index],
                cross_correlate2d_direct(
                    np.asarray(data, dtype=np.float64),
                    np.asarray(kernels[index], dtype=np.float64),
                ),
                atol=atol,
            )
        return batch

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_matches_direct_per_kernel(self, dtype):
        data = random_array((10, 12), 0).astype(dtype)
        kernels = random_array((5, 3, 4), 1).astype(dtype)
        atol = 1e-4 if dtype == np.float32 else 1e-9
        self.assert_matches_direct(data, kernels, atol=atol)

    def test_non_power_of_two_table(self):
        data = random_array((11, 17), 2)
        kernels = random_array((4, 3, 5), 3)
        self.assert_matches_direct(data, kernels)

    def test_one_by_one_kernels(self):
        data = random_array((7, 9), 4)
        kernels = random_array((3, 1, 1), 5)
        batch = self.assert_matches_direct(data, kernels)
        for index in range(3):
            np.testing.assert_allclose(
                batch[index], data * kernels[index, 0, 0], atol=1e-10
            )

    def test_full_table_kernels(self):
        data = random_array((6, 8), 6)
        kernels = random_array((4, 6, 8), 7)
        batch = self.assert_matches_direct(data, kernels)
        assert batch.shape == (4, 1, 1)

    def test_single_kernel_matches_scalar_path(self):
        data = random_array((9, 9), 8)
        kernel = random_array((3, 3), 9)
        np.testing.assert_allclose(
            cross_correlate2d_valid_batch(data, kernel[np.newaxis])[0],
            cross_correlate2d_valid(data, kernel),
            atol=1e-10,
        )

    def test_own_backend_fallback_matches_numpy(self):
        data = random_array((12, 10), 10)
        kernels = random_array((3, 4, 4), 11)
        np.testing.assert_allclose(
            cross_correlate2d_valid_batch(data, kernels, backend="own"),
            cross_correlate2d_valid_batch(data, kernels, backend="numpy"),
            atol=1e-8,
        )

    def test_chunked_batches_match_single_batch(self):
        data = random_array((16, 16), 12)
        kernels = random_array((7, 4, 4), 13)
        # A tiny byte cap forces one kernel per chunk.
        chunked = cross_correlate2d_valid_batch(data, kernels, max_batch_bytes=1)
        whole = cross_correlate2d_valid_batch(data, kernels)
        np.testing.assert_allclose(chunked, whole, atol=1e-12)

    def test_out_parameter_casts_in_place(self):
        data = random_array((10, 10), 14)
        kernels = random_array((4, 3, 3), 15)
        out = np.empty((4, 8, 8), dtype=np.float32)
        result = cross_correlate2d_valid_batch(data, kernels, out=out)
        assert result is out
        np.testing.assert_allclose(
            out, cross_correlate2d_valid_batch(data, kernels), atol=1e-4
        )

    def test_spectrum_cache_reused_across_calls(self):
        data = random_array((12, 12), 16)
        cache = SpectrumCache(data)
        kernels_a = random_array((2, 4, 4), 17)
        kernels_b = random_array((3, 4, 4), 18)
        cross_correlate2d_valid_batch(data, kernels_a, spectrum_cache=cache)
        cross_correlate2d_valid_batch(data, kernels_b, spectrum_cache=cache)
        assert cache.computed == 1
        assert cache.reused == 1

    def test_mismatched_cache_rejected(self):
        data = random_array((12, 12), 19)
        cache = SpectrumCache(random_array((8, 8), 20))
        with pytest.raises(ParameterError):
            cross_correlate2d_valid_batch(
                data, random_array((2, 3, 3), 21), spectrum_cache=cache
            )

    def test_bad_shapes_rejected(self):
        with pytest.raises(ShapeError):
            cross_correlate2d_valid_batch(np.ones((4, 4)), np.ones((2, 2)))
        with pytest.raises(ShapeError):
            cross_correlate2d_valid_batch(np.ones((4, 4)), np.ones((2, 5, 2)))
        with pytest.raises(ShapeError):
            cross_correlate2d_valid_batch(
                np.ones((4, 4)), np.ones((2, 2, 2)), out=np.empty((2, 4, 4))
            )

    def test_bad_batch_bytes_rejected(self):
        with pytest.raises(ParameterError):
            cross_correlate2d_valid_batch(
                np.ones((4, 4)), np.ones((1, 2, 2)), max_batch_bytes=0
            )


class TestSpectrumCache:
    def test_spectrum_matches_padded_rfft2(self):
        data = random_array((6, 9), 0)
        cache = SpectrumCache(data)
        padded = np.zeros((12, 16))
        padded[:6, :9] = data
        np.testing.assert_allclose(
            cache.spectrum((12, 16)), np.fft.rfft2(padded), atol=1e-10
        )

    def test_lru_eviction_bounded(self):
        data = random_array((4, 4), 1)
        cache = SpectrumCache(data, max_entries=2)
        for size in (4, 5, 6, 7):
            cache.spectrum((size, size))
        assert cache.computed == 4
        assert len(cache._spectra) == 2
        assert cache.nbytes > 0

    def test_too_small_padding_rejected(self):
        cache = SpectrumCache(random_array((8, 8), 2))
        with pytest.raises(ParameterError):
            cache.spectrum((4, 8))

    def test_non_2d_rejected(self):
        with pytest.raises(ShapeError):
            SpectrumCache(np.ones(5))

    def test_bad_max_entries_rejected(self):
        with pytest.raises(ParameterError):
            SpectrumCache(np.ones((4, 4)), max_entries=0)

    def test_clear_drops_entries(self):
        cache = SpectrumCache(random_array((4, 4), 3))
        cache.spectrum((8, 8))
        cache.clear()
        assert cache.nbytes == 0
