"""Tests for repro.fourier.conv: FFT convolution and sliding dot products."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.fourier import (
    convolve2d_full,
    cross_correlate2d_direct,
    cross_correlate2d_valid,
)


def random_array(shape, seed):
    return np.random.default_rng(seed).normal(size=shape)


class TestFullConvolution:
    def test_identity_kernel(self):
        data = random_array((5, 7), 0)
        kernel = np.array([[1.0]])
        np.testing.assert_allclose(convolve2d_full(data, kernel), data, atol=1e-10)

    def test_shape(self):
        out = convolve2d_full(random_array((6, 9), 1), random_array((3, 4), 2))
        assert out.shape == (8, 12)

    def test_commutativity(self):
        a = random_array((4, 5), 3)
        b = random_array((6, 2), 4)
        np.testing.assert_allclose(
            convolve2d_full(a, b), convolve2d_full(b, a), atol=1e-9
        )

    def test_matches_direct_small(self):
        a = random_array((3, 3), 5)
        b = random_array((2, 2), 6)
        expected = np.zeros((4, 4))
        for i in range(3):
            for j in range(3):
                for u in range(2):
                    for v in range(2):
                        expected[i + u, j + v] += a[i, j] * b[u, v]
        np.testing.assert_allclose(convolve2d_full(a, b), expected, atol=1e-10)

    def test_own_backend_matches_numpy_backend(self):
        a = random_array((7, 11), 7)
        b = random_array((4, 3), 8)
        np.testing.assert_allclose(
            convolve2d_full(a, b, backend="own"),
            convolve2d_full(a, b, backend="numpy"),
            atol=1e-9,
        )

    def test_rfft_fast_path_matches_complex_path(self):
        """Real inputs on the numpy backend take rfft2; the result must
        match the generic complex path bit-for-noise."""
        a = random_array((9, 13), 9)
        b = random_array((5, 4), 10)
        fast = convolve2d_full(a, b, backend="numpy")
        generic = convolve2d_full(a + 0j, b + 0j, backend="numpy")
        assert np.isrealobj(fast)
        np.testing.assert_allclose(fast, generic.real, atol=1e-9)

    def test_complex_inputs_stay_complex(self):
        a = random_array((4, 4), 11) + 1j * random_array((4, 4), 12)
        b = random_array((2, 2), 13)
        out = convolve2d_full(a, b)
        assert np.iscomplexobj(out)

    def test_non_2d_rejected(self):
        with pytest.raises(ShapeError):
            convolve2d_full(np.ones(3), np.ones((2, 2)))
        with pytest.raises(ShapeError):
            convolve2d_full(np.ones((2, 2)), np.ones((2, 2, 2)))


class TestValidCrossCorrelation:
    def test_shape(self):
        out = cross_correlate2d_valid(random_array((10, 12), 0), random_array((3, 5), 1))
        assert out.shape == (8, 8)

    def test_matches_direct(self):
        data = random_array((9, 11), 2)
        kernel = random_array((4, 3), 3)
        np.testing.assert_allclose(
            cross_correlate2d_valid(data, kernel),
            cross_correlate2d_direct(data, kernel),
            atol=1e-9,
        )

    def test_single_position(self):
        data = random_array((4, 6), 4)
        out = cross_correlate2d_valid(data, data)
        assert out.shape == (1, 1)
        assert abs(out[0, 0] - np.sum(data * data)) < 1e-9

    def test_each_entry_is_window_dot_product(self):
        data = random_array((6, 7), 5)
        kernel = random_array((2, 3), 6)
        out = cross_correlate2d_valid(data, kernel)
        for i in range(out.shape[0]):
            for j in range(out.shape[1]):
                window = data[i : i + 2, j : j + 3]
                assert abs(out[i, j] - np.sum(window * kernel)) < 1e-9

    def test_kernel_too_large_rejected(self):
        with pytest.raises(ShapeError):
            cross_correlate2d_valid(np.ones((3, 3)), np.ones((4, 2)))
        with pytest.raises(ShapeError):
            cross_correlate2d_direct(np.ones((3, 3)), np.ones((2, 4)))

    @given(
        data_h=st.integers(min_value=1, max_value=12),
        data_w=st.integers(min_value=1, max_value=12),
        ker_h=st.integers(min_value=1, max_value=12),
        ker_w=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_fft_equals_direct_property(self, data_h, data_w, ker_h, ker_w):
        if ker_h > data_h or ker_w > data_w:
            return
        data = random_array((data_h, data_w), data_h * 13 + data_w)
        kernel = random_array((ker_h, ker_w), ker_h * 17 + ker_w)
        np.testing.assert_allclose(
            cross_correlate2d_valid(data, kernel),
            cross_correlate2d_direct(data, kernel),
            atol=1e-8,
        )
