"""Tests for StitchedStore, estimate_stability_index, choose_k_by_silhouette."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import choose_k_by_silhouette
from repro.core import ExactLpOracle, PrecomputedSketchOracle, SketchGenerator
from repro.errors import ParameterError, StoreError
from repro.stable import sample_symmetric_stable
from repro.stable.theory import estimate_stability_index
from repro.table import StitchedStore, TileSpec, write_table

from tests.test_cluster_kmeans import blob_tiles


class TestStitchedStore:
    def write_days(self, tmp_path, day_cols=(10, 14, 6), rows=8, seed=0):
        rng = np.random.default_rng(seed)
        arrays = [rng.normal(size=(rows, cols)) for cols in day_cols]
        paths = []
        for index, values in enumerate(arrays):
            path = tmp_path / f"day{index}.rtbl"
            write_table(path, values, chunk_shape=(4, 4))
            paths.append(path)
        return paths, np.concatenate(arrays, axis=1)

    def test_shape_and_read_all(self, tmp_path):
        paths, combined = self.write_days(tmp_path)
        with StitchedStore(paths) as store:
            assert store.shape == combined.shape
            np.testing.assert_array_equal(store.read_all(), combined)

    def test_tile_across_file_boundary(self, tmp_path):
        paths, combined = self.write_days(tmp_path)
        with StitchedStore(paths) as store:
            spec = TileSpec(1, 7, 5, 12)  # spans files 0, 1 and 2
            np.testing.assert_array_equal(store.read_tile(spec), combined[spec.slices])

    def test_tile_within_one_file(self, tmp_path):
        paths, combined = self.write_days(tmp_path)
        with StitchedStore(paths) as store:
            spec = TileSpec(0, 11, 4, 3)  # fully inside file 1
            np.testing.assert_array_equal(store.read_tile(spec), combined[spec.slices])

    def test_single_file(self, tmp_path):
        paths, combined = self.write_days(tmp_path, day_cols=(12,))
        with StitchedStore(paths) as store:
            np.testing.assert_array_equal(store.read_all(), combined)

    def test_verify_propagates(self, tmp_path):
        paths, _ = self.write_days(tmp_path)
        data = bytearray(paths[1].read_bytes())
        data[-3] ^= 0xFF
        paths[1].write_bytes(bytes(data))
        with StitchedStore(paths) as store:
            with pytest.raises(StoreError):
                store.verify()

    def test_row_mismatch_rejected(self, tmp_path):
        a = tmp_path / "a.rtbl"
        b = tmp_path / "b.rtbl"
        write_table(a, np.zeros((4, 4)))
        write_table(b, np.zeros((5, 4)))
        with pytest.raises(StoreError):
            StitchedStore([a, b])

    def test_dtype_mismatch_rejected(self, tmp_path):
        a = tmp_path / "a.rtbl"
        b = tmp_path / "b.rtbl"
        write_table(a, np.zeros((4, 4), dtype=np.float64))
        write_table(b, np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(StoreError):
            StitchedStore([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            StitchedStore([])

    def test_out_of_bounds_tile(self, tmp_path):
        paths, combined = self.write_days(tmp_path)
        with StitchedStore(paths) as store:
            with pytest.raises(Exception):
                store.read_tile(TileSpec(0, 0, combined.shape[0] + 1, 2))

    def test_chunks_touched_aggregates(self, tmp_path):
        paths, _ = self.write_days(tmp_path)
        with StitchedStore(paths) as store:
            store.read_all()
            assert store.chunks_touched > 0


class TestStabilityIndexEstimator:
    @pytest.mark.parametrize("alpha", [0.5, 1.0, 1.5, 2.0])
    def test_recovers_alpha(self, alpha):
        rng = np.random.default_rng(int(alpha * 100))
        samples = sample_symmetric_stable(alpha, 200_000, rng)
        estimate = estimate_stability_index(samples)
        assert abs(estimate - alpha) < 0.1

    def test_scale_invariant(self):
        rng = np.random.default_rng(7)
        samples = sample_symmetric_stable(1.2, 200_000, rng)
        a = estimate_stability_index(samples)
        b = estimate_stability_index(1000.0 * samples)
        assert abs(a - b) < 0.05

    def test_sketch_difference_entries_follow_p(self):
        """The diagnostic use case: sketch-difference entries of a p=0.8
        generator look 0.8-stable."""
        p = 0.8
        rng = np.random.default_rng(8)
        x, y = rng.normal(size=(8, 8)), rng.normal(size=(8, 8))
        entries = []
        for seed in range(200):
            gen = SketchGenerator(p=p, k=16, seed=seed)
            entries.extend((gen.sketch(x).values - gen.sketch(y).values).tolist())
        estimate = estimate_stability_index(np.asarray(entries))
        assert abs(estimate - p) < 0.15

    def test_validation(self):
        with pytest.raises(ParameterError):
            estimate_stability_index(np.ones(3))
        with pytest.raises(ParameterError):
            estimate_stability_index(np.zeros(100))


class TestChooseK:
    def test_picks_true_k_exact(self):
        tiles, _ = blob_tiles(n_per=8, n_blobs=3, seed=20)
        oracle = ExactLpOracle(tiles, p=2.0)
        best, scores = choose_k_by_silhouette(oracle, [2, 3, 4, 6], seed=1)
        assert best == 3
        assert set(scores) == {2, 3, 4, 6}

    def test_picks_true_k_sketched(self):
        tiles, _ = blob_tiles(n_per=8, n_blobs=4, shape=(8, 8), seed=21)
        gen = SketchGenerator(p=1.0, k=96, seed=0)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        best, _scores = choose_k_by_silhouette(oracle, [2, 4, 8], seed=1)
        assert best == 4

    def test_validation(self):
        tiles, _ = blob_tiles(n_per=3, seed=22)
        oracle = ExactLpOracle(tiles, p=2.0)
        with pytest.raises(ParameterError):
            choose_k_by_silhouette(oracle, [])
        with pytest.raises(ParameterError):
            choose_k_by_silhouette(oracle, [1, 3])
