"""CLI smoke tests for the figure modules' main() entry points."""

from __future__ import annotations

class TestFigureMains:
    def test_figure3_main(self, monkeypatch, capsys):
        from repro.experiments import figure3
        from tests.test_experiments import TINY_FIG3

        monkeypatch.setattr(figure3, "Figure3Config", _factory(TINY_FIG3))
        figure3.main([])
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "agreement_%" in out

    def test_figure4a_main(self, monkeypatch, capsys):
        from repro.experiments import figure4a
        from tests.test_experiments import TINY_FIG4A

        monkeypatch.setattr(figure4a, "Figure4aConfig", _factory(TINY_FIG4A))
        figure4a.main([])
        assert "n_clusters" in capsys.readouterr().out

    def test_figure4b_main(self, monkeypatch, capsys):
        from repro.experiments import figure4b
        from tests.test_experiments import TINY_FIG4B

        monkeypatch.setattr(figure4b, "Figure4bConfig", _factory(TINY_FIG4B))
        figure4b.main([])
        assert "sketched_accuracy_%" in capsys.readouterr().out

    def test_figure5_main(self, monkeypatch, capsys):
        from repro.experiments import figure5
        from tests.test_experiments import TINY_FIG5

        monkeypatch.setattr(figure5, "Figure5Config", _factory(TINY_FIG5))
        figure5.main([])
        assert "blank = largest cluster" in capsys.readouterr().out

    def test_scaling_main(self, monkeypatch, capsys):
        from repro.experiments import scaling

        tiny = scaling.ScalingConfig(
            n_stations=32, day_counts=(1, 2), window_side=8, n_pairs=50, k=8
        )
        monkeypatch.setattr(scaling, "ScalingConfig", _factory(tiny))
        scaling.main([])
        assert "preprocess_us_per_cell" in capsys.readouterr().out

    def test_full_flag_selects_full_preset(self, monkeypatch):
        """--full must route through Config.full()."""
        from repro.experiments import figure5

        calls = {}

        class Probe:
            @staticmethod
            def full():
                calls["full"] = True
                from tests.test_experiments import TINY_FIG5

                return TINY_FIG5

        monkeypatch.setattr(figure5, "Figure5Config", Probe)
        figure5.main(["--full"])
        assert calls.get("full")


def _factory(config):
    """A stand-in Config class whose default construction and .full()
    both return the given tiny config."""

    class Factory:
        def __new__(cls):
            return config

        @staticmethod
        def full():
            return config

    return Factory
