"""Telemetry under churn: sampler races, turnover drills, live wire ops.

The unit tests in ``test_obs_telemetry.py`` pin behaviour with injected
clocks; these tests run the telemetry plane the way production does —
a daemon sampler racing live registry writers, watermarks fed by the
18-day :class:`~repro.ingest.window.WindowedTable` turnover drill
through ``engine.update``, burn-rate alerts fired and cleared by
deliberate staleness/latency injection, and the ``telemetry`` wire op
polled through a real server, client, and shard router.
"""

from __future__ import annotations

import random
import threading
import time

import numpy as np
import pytest

from repro.ingest import DeltaBatch, WindowedTable
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import SLO, IngestWatermarks, Telemetry
from repro.serve import Client, SketchEngine, SketchServer
from repro.shard import ShardRouter, ShardSpec


class FakeClock:
    """A hand-cranked monotonic clock shared by telemetry components."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


def make_engine(**kwargs) -> SketchEngine:
    engine = SketchEngine(p=1.0, k=16, seed=2, **kwargs)
    engine.register_array("t", np.random.default_rng(8).normal(size=(64, 64)))
    return engine


class TestSamplerChurn:
    def test_sampler_thread_races_registry_writers_cleanly(self):
        registry = MetricsRegistry()
        telemetry = Telemetry(registry, interval=0.002, capacity=16)
        stop = threading.Event()

        def writer(worker: int) -> None:
            # Keep minting *new* labelled children while the sampler
            # iterates collect(): the worst-case registry mutation.
            n = 0
            while not stop.is_set():
                registry.counter("churn_total", worker=worker, lane=n % 7).inc()
                registry.histogram(
                    "churn_seconds", worker=worker
                ).observe(0.001 * (n % 13))
                registry.gauge("churn_depth", worker=worker).set(n)
                n += 1

        writers = [
            threading.Thread(target=writer, args=(i,), daemon=True)
            for i in range(3)
        ]
        telemetry.start()
        try:
            for thread in writers:
                thread.start()
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if telemetry._samples_total.value >= 20:
                    break
                time.sleep(0.01)
        finally:
            stop.set()
            for thread in writers:
                thread.join(timeout=5.0)
            telemetry.stop()
        assert telemetry._sample_errors.value == 0
        assert telemetry._samples_total.value >= 20
        # The ring respected its bound through the churn.
        assert len(telemetry.history) <= 16
        snapshot = telemetry.snapshot()
        assert snapshot["samples"] <= 16

    def test_stop_is_idempotent_and_restartable(self):
        telemetry = Telemetry(MetricsRegistry(), interval=0.01)
        telemetry.start()
        assert telemetry.running
        telemetry.stop()
        telemetry.stop()
        assert not telemetry.running
        telemetry.start()
        assert telemetry.running
        telemetry.stop()


class TestWindowTurnoverWatermarks:
    """Watermark correctness through the 18-day rolling-window drill."""

    HEIGHT, DAY_WIDTH, WINDOW_DAYS = 8, 4, 18

    def day_traffic(self, day: int) -> np.ndarray:
        rng = np.random.default_rng(500 + day)
        return np.abs(rng.normal(loc=2.0, size=(self.HEIGHT, self.DAY_WIDTH)))

    def test_turnover_batches_advance_the_watermark(self):
        window = WindowedTable(
            "calls", height=self.HEIGHT, day_width=self.DAY_WIDTH,
            window_days=self.WINDOW_DAYS, p=1.0, k=16, seed=3,
        )
        for day in range(self.WINDOW_DAYS):
            window.arrive(day, self.day_traffic(day))
        engine = SketchEngine(p=1.0, k=16, seed=3, update_mode="invalidate")
        engine.register_array("calls", window.materialized())

        applied = 0
        last_batch = None
        for day in range(self.WINDOW_DAYS, self.WINDOW_DAYS + 4):
            for retired in window.days_to_retire(day):
                batch = window.retire(retired)
                if batch is not None:
                    assert engine.update(batch)["applied"]
                    applied += 1
                    last_batch = batch
            batch = window.arrive(day, self.day_traffic(day))
            assert engine.update(batch)["applied"]
            applied += 1
            last_batch = batch
            marks = engine.watermarks.snapshot()["calls"]
            # The watermark tracks the *last applied* turnover batch.
            assert marks["batch_id"] == batch.batch_id
            assert batch.batch_id.startswith(f"calls:day{day}:arrive:")

        marks = engine.watermarks.snapshot()["calls"]
        assert marks["batches"] == applied
        assert marks["duplicates"] == 0
        assert marks["staleness_seconds"] < 60.0

        # Re-delivering the last batch is deduped and must not refresh
        # the watermark: a replay is not fresh data.
        before = engine.watermarks.snapshot()["calls"]
        result = engine.update(last_batch)
        assert result["duplicate"]
        after = engine.watermarks.snapshot()["calls"]
        assert after["batch_id"] == before["batch_id"]
        assert after["batches"] == applied
        assert after["duplicates"] == 1
        assert after["staleness_seconds"] >= before["staleness_seconds"]


class TestBurnRateDrills:
    """Deliberate staleness/latency injection: alerts fire, then clear."""

    def test_staleness_injection_fires_then_clears(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        marks = IngestWatermarks(registry, clock=clock)
        telemetry = Telemetry(
            registry,
            slos=[SLO(
                "staleness", "staleness", target=10.0,
                window_seconds=30.0, short_window_seconds=10.0,
                burn_threshold=1.0, clear_factor=0.5,
            )],
            watermarks=marks,
            clock=clock,
        )
        marks.note_apply("calls", "b1")
        telemetry.sample_once()
        assert telemetry.slo_monitor.firing() == []

        # Injection: stop applying batches for 50 s against a 10 s
        # objective — burn 5x on both windows.
        clock.advance(50.0)
        telemetry.sample_once()
        firing = telemetry.slo_monitor.firing()
        assert [alert.slo for alert in firing] == ["staleness"]
        assert firing[0].observed == pytest.approx(50.0)

        # Recovery: a fresh batch lands, staleness collapses under the
        # clear line (burn <= 0.5) and the alert clears.
        marks.note_apply("calls", "b2")
        clock.advance(1.0)
        telemetry.sample_once()
        assert telemetry.slo_monitor.firing() == []
        states = [e["state"] for e in telemetry.slo_monitor.history()]
        assert states == ["firing", "cleared"]

    def test_latency_injection_fires_then_clears(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        latency = registry.histogram(
            "server_request_seconds",
            edges=(0.005, 0.05, 0.5, 5.0),
            op="all",
        )
        telemetry = Telemetry(
            registry,
            slos=[SLO(
                "latency_p99", "latency_p99", target=0.1,
                window_seconds=30.0, short_window_seconds=10.0,
                burn_threshold=1.0, clear_factor=0.5,
            )],
            clock=clock,
        )
        telemetry.sample_once()

        # Injection: a burst of ~1 s requests pushes the windowed p99
        # an order of magnitude over the 100 ms objective.
        for _ in range(50):
            latency.observe(1.0)
        clock.advance(5.0)
        telemetry.sample_once()
        firing = telemetry.slo_monitor.firing()
        assert [alert.slo for alert in firing] == ["latency_p99"]
        assert firing[0].observed > 0.5

        # Recovery: fast traffic only; once the slow burst ages past
        # both windows the p99 drops and the alert clears.
        for _ in range(3):
            clock.advance(20.0)
            for _ in range(200):
                latency.observe(0.002)
            telemetry.sample_once()
        assert telemetry.slo_monitor.firing() == []
        states = [e["state"] for e in telemetry.slo_monitor.history()]
        assert states == ["firing", "cleared"]


class TestTelemetryWireOp:
    def test_server_answers_telemetry_polls(self):
        engine = make_engine()
        with SketchServer(engine) as server:
            server.start()
            with Client(*server.address, timeout=10.0) as client:
                client.update("t", [(0, 0, 5.0)], batch_id="wire-1")
                client.query([("t", (0, 0, 8, 8), (16, 16, 8, 8))])
                payload = client.telemetry()
                assert payload["samples"] >= 1
                assert payload["watermarks"]["t"]["batch_id"] == "wire-1"
                assert payload["staleness_seconds"] is not None
                assert {"qps", "updates_per_s"} <= set(payload["rates"])
                assert payload["slo"]["firing"] == []
                # Passive mode dedupes back-to-back polls (a frame
                # younger than the freshness bound is reused) but a
                # dashboard polling at a human cadence accrues history.
                assert client.telemetry()["samples"] == payload["samples"]
                time.sleep(0.6)
                assert client.telemetry()["samples"] > payload["samples"]
        engine.close()

    def test_stats_snapshot_carries_watermarks_and_slo(self):
        engine = make_engine()
        engine.update(DeltaBatch.from_cells("t", "s1", [(1, 1, 2.0)]))
        snapshot = engine.stats_snapshot()
        assert snapshot["watermarks"]["t"]["batch_id"] == "s1"
        assert {o["slo"] for o in snapshot["slo"]["objectives"]} == {
            "availability", "latency_p99", "staleness", "quality",
        }
        engine.close()


class TestRouterTelemetryFanIn:
    def test_router_merges_shard_telemetry(self):
        engines = [make_engine() for _ in range(2)]
        servers = [SketchServer(engine) for engine in engines]
        try:
            for server in servers:
                server.start()
            specs = [
                ShardSpec(f"s{i}", *server.address)
                for i, server in enumerate(servers)
            ]
            with ShardRouter(
                specs, overrides={"t": "s0"}, rng=random.Random(5)
            ) as router:
                router.update(DeltaBatch.from_cells("t", "r1", [(2, 2, 3.0)]))
                router.query([("t", (0, 0, 8, 8), (16, 16, 8, 8))])
                payload = router.telemetry_snapshot()
                assert set(payload["shards"]) == {"s0", "s1"}
                assert payload.get("shards_unreachable", {}) == {}
                aggregate = payload["aggregate"]
                assert aggregate["shards"] == 2
                # The update landed on the owning shard only; the fleet
                # watermark view nests it under that shard.
                assert aggregate["watermarks"]["s0"]["t"]["batch_id"] == "r1"
                assert "s1" not in aggregate["watermarks"]
                assert aggregate["staleness_seconds"] is not None
                assert aggregate["slo_firing"] == []
                # The router's own (passive) telemetry is the top level.
                assert payload["samples"] >= 1
        finally:
            for server in servers:
                server.stop()
            for engine in engines:
                engine.close()
