"""Tests for repro.fourier.fft: the from-scratch FFT."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.fourier import (
    fft,
    fft2,
    ifft,
    ifft2,
    irfft,
    irfft2,
    next_fast_len,
    next_power_of_two,
    rfft,
    rfft2,
)


def random_complex(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape) + 1j * rng.normal(size=shape)


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (1023, 1024), (1024, 1024)],
    )
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected


class TestAgainstNumpy:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256])
    def test_radix2_matches_numpy(self, n):
        x = random_complex(n, seed=n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 12, 100, 129])
    def test_bluestein_matches_numpy(self, n):
        x = random_complex(n, seed=n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-8)

    @pytest.mark.parametrize("n", [4, 7, 16, 30])
    def test_inverse_matches_numpy(self, n):
        x = random_complex(n, seed=n + 1000)
        np.testing.assert_allclose(ifft(x), np.fft.ifft(x), atol=1e-9)

    def test_2d_matches_numpy(self):
        x = random_complex((16, 24), seed=5)
        np.testing.assert_allclose(fft2(x), np.fft.fft2(x), atol=1e-8)

    def test_2d_inverse_matches_numpy(self):
        x = random_complex((12, 8), seed=6)
        np.testing.assert_allclose(ifft2(x), np.fft.ifft2(x), atol=1e-8)

    def test_batched_axis(self):
        x = random_complex((3, 5, 32), seed=7)
        np.testing.assert_allclose(fft(x, axis=-1), np.fft.fft(x, axis=-1), atol=1e-9)
        np.testing.assert_allclose(fft(x, axis=1), np.fft.fft(x, axis=1), atol=1e-9)

    def test_real_input(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=48)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-9)


class TestRoundTrip:
    @given(n=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_ifft_fft_identity(self, n):
        x = random_complex(n, seed=n)
        np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-8)

    def test_2d_round_trip(self):
        x = random_complex((9, 17), seed=11)
        np.testing.assert_allclose(ifft2(fft2(x)), x, atol=1e-8)


class TestAlgebraicProperties:
    def test_linearity(self):
        x = random_complex(64, seed=1)
        y = random_complex(64, seed=2)
        np.testing.assert_allclose(
            fft(2.0 * x + 3.0 * y), 2.0 * fft(x) + 3.0 * fft(y), atol=1e-9
        )

    def test_parseval(self):
        x = random_complex(128, seed=3)
        energy_time = np.sum(np.abs(x) ** 2)
        energy_freq = np.sum(np.abs(fft(x)) ** 2) / 128
        assert abs(energy_time - energy_freq) < 1e-8

    def test_dc_component_is_sum(self):
        x = random_complex(32, seed=4)
        assert abs(fft(x)[0] - np.sum(x)) < 1e-9


class TestRealTransforms:
    @pytest.mark.parametrize("n", [2, 4, 8, 64, 256])
    def test_rfft_matches_numpy_pow2(self, n):
        x = np.random.default_rng(n).normal(size=n)
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 12, 100])
    def test_rfft_matches_numpy_general(self, n):
        x = np.random.default_rng(n + 500).normal(size=n)
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x), atol=1e-8)

    @pytest.mark.parametrize("n", [4, 7, 16, 31, 64])
    def test_irfft_round_trip(self, n):
        x = np.random.default_rng(n + 900).normal(size=n)
        np.testing.assert_allclose(irfft(rfft(x), n), x, atol=1e-8)

    def test_rfft_batched(self):
        x = np.random.default_rng(77).normal(size=(3, 32))
        np.testing.assert_allclose(rfft(x, axis=-1), np.fft.rfft(x, axis=-1), atol=1e-9)
        np.testing.assert_allclose(rfft(x.T, axis=0), np.fft.rfft(x.T, axis=0), atol=1e-9)

    def test_rfft_output_length(self):
        assert rfft(np.ones(16)).shape == (9,)
        assert rfft(np.ones(15)).shape == (8,)

    def test_rfft_rejects_complex(self):
        with pytest.raises(ParameterError):
            rfft(np.ones(4) + 1j)

    def test_rfft_rejects_empty(self):
        with pytest.raises(ParameterError):
            rfft(np.array([]))

    def test_irfft_rejects_wrong_bin_count(self):
        with pytest.raises(ParameterError):
            irfft(np.ones(5, dtype=complex), n=16)

    def test_numpy_backend_delegates(self):
        x = np.random.default_rng(88).normal(size=24)
        np.testing.assert_allclose(
            rfft(x, backend="numpy"), rfft(x, backend="own"), atol=1e-9
        )
        spectrum = rfft(x)
        np.testing.assert_allclose(
            irfft(spectrum, 24, backend="numpy"), irfft(spectrum, 24, backend="own"),
            atol=1e-9,
        )


class TestNextFastLen:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 1), (1, 1), (2, 2), (5, 5), (7, 8), (11, 12), (543, 576), (1023, 1024)],
    )
    def test_values(self, n, expected):
        assert next_fast_len(n) == expected

    @pytest.mark.parametrize("n", list(range(1, 200)) + [519, 543, 767, 1000])
    def test_result_is_5_smooth_and_bounded(self, n):
        m = next_fast_len(n)
        assert m >= n
        assert m <= next_power_of_two(n)
        for factor in (2, 3, 5):
            while m % factor == 0:
                m //= factor
        assert m == 1


class TestReal2dTransforms:
    @pytest.mark.parametrize("shape", [(4, 8), (8, 8), (6, 10), (5, 7), (1, 4)])
    def test_rfft2_matches_numpy(self, shape):
        x = np.random.default_rng(sum(shape)).normal(size=shape)
        np.testing.assert_allclose(rfft2(x), np.fft.rfft2(x), atol=1e-9)

    def test_rfft2_batched_leading_axis(self):
        x = np.random.default_rng(1).normal(size=(3, 8, 8))
        np.testing.assert_allclose(rfft2(x), np.fft.rfft2(x), atol=1e-9)

    @pytest.mark.parametrize("shape", [(4, 8), (8, 8), (6, 10), (5, 7)])
    def test_irfft2_round_trip(self, shape):
        x = np.random.default_rng(sum(shape) + 7).normal(size=shape)
        np.testing.assert_allclose(irfft2(rfft2(x), s=shape), x, atol=1e-9)

    def test_irfft2_matches_numpy_backend(self):
        x = np.random.default_rng(2).normal(size=(2, 8, 12))
        spectrum = np.fft.rfft2(x)
        np.testing.assert_allclose(
            irfft2(spectrum, s=(8, 12), backend="own"),
            irfft2(spectrum, s=(8, 12), backend="numpy"),
            atol=1e-9,
        )

    def test_bad_backend_rejected(self):
        with pytest.raises(ParameterError):
            rfft2(np.ones((4, 4)), backend="fftw")
        with pytest.raises(ParameterError):
            irfft2(np.ones((4, 3), dtype=complex), s=(4, 4), backend="fftw")

    def test_bad_shape_rejected(self):
        with pytest.raises(ParameterError):
            irfft2(np.ones((4, 3), dtype=complex), s=(4,))


class TestBackends:
    def test_numpy_backend(self):
        x = random_complex(50, seed=9)
        np.testing.assert_allclose(
            fft(x, backend="numpy"), fft(x, backend="own"), atol=1e-8
        )

    def test_bad_backend_rejected(self):
        with pytest.raises(ParameterError):
            fft(np.ones(4), backend="fftw")
        with pytest.raises(ParameterError):
            ifft(np.ones(4), backend="fftw")

    def test_empty_axis_rejected(self):
        with pytest.raises(ParameterError):
            fft(np.zeros((3, 0)))
