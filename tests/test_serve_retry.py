"""Tests for repro.serve.retry: backoff math, typed retryability, loops."""

from __future__ import annotations

import random
import socket
import time

import pytest

from repro.errors import (
    ConnectionLostError,
    ParameterError,
    ProtocolError,
    QueryTimeoutError,
    RetriesExhaustedError,
    ServerDrainingError,
    ServerOverloadedError,
    TransientServeError,
)
from repro.serve.client import BinaryTcpTransport, Client
from repro.serve.retry import RetryPolicy, retry_call


class TestPolicyValidation:
    def test_zero_attempts_rejected(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ParameterError):
            RetryPolicy(base_delay=-0.1)

    def test_submultiplicative_growth_rejected(self):
        with pytest.raises(ParameterError):
            RetryPolicy(multiplier=0.5)

    def test_unknown_jitter_rejected(self):
        with pytest.raises(ParameterError):
            RetryPolicy(jitter="lunar")


class TestBackoff:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0,
                             jitter="none")
        assert [policy.backoff(i) for i in range(4)] == [0.1, 0.2, 0.4, 0.8]

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=3.0,
                             jitter="none")
        assert policy.backoff(5) == 3.0

    def test_full_jitter_within_envelope_and_deterministic(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=2.0, max_delay=4.0)
        draws_a = [policy.backoff(i, random.Random(7)) for i in range(6)]
        draws_b = [policy.backoff(i, random.Random(7)) for i in range(6)]
        assert draws_a == draws_b  # same seed, same schedule
        for i, value in enumerate(draws_a):
            assert 0.0 <= value <= min(4.0, 0.5 * 2.0 ** i)

    def test_distinct_rng_streams_decorrelate(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=100.0)
        a = [policy.backoff(3, random.Random(1)) for _ in range(3)]
        b = [policy.backoff(3, random.Random(2)) for _ in range(3)]
        assert a != b


class TestRetryability:
    @pytest.mark.parametrize("exc", [
        ConnectionLostError("x"),
        ServerOverloadedError("x"),
        ServerDrainingError("x"),
        TransientServeError("x"),
    ])
    def test_transient_family_is_retryable(self, exc):
        assert RetryPolicy().is_retryable(exc)

    @pytest.mark.parametrize("exc", [
        ParameterError("x"),
        ProtocolError("x"),
        ValueError("x"),
    ])
    def test_permanent_errors_are_not(self, exc):
        assert not RetryPolicy().is_retryable(exc)

    def test_retry_later_codes_on_wire_errors(self):
        assert ServerOverloadedError.code == "RETRY_LATER"
        assert ServerDrainingError.code == "RETRY_LATER"
        assert ConnectionLostError.code == "CONNECTION_LOST"


class _Flaky:
    """Fails ``failures`` times with ``exc_type``, then returns 42."""

    def __init__(self, failures, exc_type=ConnectionLostError):
        self.failures = failures
        self.exc_type = exc_type
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_type(f"flake {self.calls}")
        return 42


class TestRetryCall:
    def policy(self, attempts=4):
        return RetryPolicy(max_attempts=attempts, base_delay=0.01, jitter="none")

    def test_succeeds_after_transient_failures(self):
        fn = _Flaky(failures=2)
        sleeps = []
        assert retry_call(fn, self.policy(), sleep=sleeps.append) == 42
        assert fn.calls == 3
        assert sleeps == [0.01, 0.02]  # exponential, deterministic

    def test_permanent_error_raises_immediately(self):
        fn = _Flaky(failures=5, exc_type=ParameterError)
        with pytest.raises(ParameterError):
            retry_call(fn, self.policy(), sleep=lambda _: None)
        assert fn.calls == 1

    def test_exhaustion_wraps_and_chains_last_error(self):
        fn = _Flaky(failures=10)
        with pytest.raises(RetriesExhaustedError) as info:
            retry_call(fn, self.policy(attempts=3), sleep=lambda _: None)
        assert fn.calls == 3
        assert isinstance(info.value.__cause__, ConnectionLostError)
        assert "flake 3" in str(info.value.__cause__)

    def test_single_attempt_policy_keeps_original_error(self):
        fn = _Flaky(failures=1)
        with pytest.raises(ConnectionLostError):
            retry_call(fn, RetryPolicy.none(), sleep=lambda _: None)

    def test_deadline_stops_the_loop(self):
        fn = _Flaky(failures=10)
        clock = iter([0.0, 0.0, 10.0]).__next__  # start, then per-check
        with pytest.raises(RetriesExhaustedError):
            retry_call(fn, self.policy(attempts=10), sleep=lambda _: None,
                       deadline=1.0, clock=clock)
        assert fn.calls == 2  # second backoff would overshoot the budget

    def test_on_retry_observer_sees_each_backoff(self):
        fn = _Flaky(failures=2)
        seen = []
        retry_call(fn, self.policy(), sleep=lambda _: None,
                   on_retry=lambda attempt, exc, pause: seen.append(
                       (attempt, type(exc).__name__, pause)))
        assert seen == [(0, "ConnectionLostError", 0.01),
                        (1, "ConnectionLostError", 0.02)]

    def test_injected_rng_makes_jittered_loop_deterministic(self):
        def run():
            fn = _Flaky(failures=3)
            sleeps = []
            retry_call(fn, RetryPolicy(max_attempts=5, base_delay=0.1),
                       rng=random.Random(99), sleep=sleeps.append)
            return sleeps

        assert run() == run()


class _DroppingTransport:
    """A transport whose connection dies on the first use."""

    def send_line(self, data: bytes) -> None:
        raise ConnectionResetError("peer went away")

    def recv_line(self) -> bytes:
        return b""

    def settimeout(self, timeout: float | None) -> None:
        pass

    def close(self) -> None:
        pass


class TestHandshakeDeadline:
    """Regression: connect + protocol negotiation count against the
    request deadline.

    The historical bug: re-dials inside the retry loop used the
    *constructor* socket timeout, so a server that accepted the TCP
    connection and then stalled before answering the binary
    negotiation preamble hung each attempt for the full constructor
    timeout (30s by default) instead of the per-attempt budget.
    """

    def test_redial_timeout_is_bounded_by_the_deadline(self):
        """Every re-dial receives the per-attempt timeout, not 30s."""
        dial_timeouts = []

        def connect(timeout):
            dial_timeouts.append(timeout)
            return _DroppingTransport()

        client = Client(
            "127.0.0.1", 1, timeout=30.0, deadline=0.5, connect=connect,
            rng=random.Random(0), sleep=lambda _: None,
        )
        with pytest.raises((RetriesExhaustedError, QueryTimeoutError)):
            client.ping()
        # The eager constructor dial keeps the constructor timeout ...
        assert dial_timeouts[0] == 30.0
        # ... and every retry re-dial gets min(timeout, deadline left),
        # so a stalled handshake can burn at most the request budget.
        assert len(dial_timeouts) >= 2, "no re-dial happened"
        for timeout in dial_timeouts[1:]:
            assert timeout is not None and timeout <= 0.5

    def test_negotiation_stall_fails_within_the_dial_timeout(self):
        """A real stalled handshake: the server-side backlog completes
        the TCP handshake but nobody ever answers the preamble.  The
        transport must fail the attempt (typed retryable) within its
        dial timeout instead of inheriting a longer socket default."""
        listener = socket.create_server(("127.0.0.1", 0))
        try:
            start = time.monotonic()
            with pytest.raises(ConnectionLostError, match="negotiation"):
                BinaryTcpTransport(*listener.getsockname(), timeout=0.2)
            assert time.monotonic() - start < 5.0
        finally:
            listener.close()
