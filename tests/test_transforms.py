"""Tests for the DFT/DCT/Haar dimensionality-reduction baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import lp_distance
from repro.errors import ParameterError, ShapeError
from repro.transforms import DctReducer, DftReducer, Haar2dReducer, HaarReducer


def smooth_signal(n=64, seed=0):
    """Low-frequency signal: what transform truncation is good at."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 2 * np.pi, n)
    return (
        rng.normal() * np.sin(t)
        + rng.normal() * np.cos(2 * t)
        + 0.05 * rng.normal(size=n)
    )


ALL_REDUCERS = [DftReducer, DctReducer, HaarReducer]


class TestInterface:
    @pytest.mark.parametrize("cls", ALL_REDUCERS)
    def test_bad_coefficient_count(self, cls):
        with pytest.raises(ParameterError):
            cls(0)

    @pytest.mark.parametrize("cls", ALL_REDUCERS)
    def test_too_many_coefficients(self, cls):
        with pytest.raises(ParameterError):
            cls(100).transform(np.ones(8))

    @pytest.mark.parametrize("cls", ALL_REDUCERS)
    def test_empty_input(self, cls):
        with pytest.raises(ShapeError):
            cls(2).transform(np.array([]))

    @pytest.mark.parametrize("cls", ALL_REDUCERS)
    def test_feature_shape_mismatch(self, cls):
        reducer = cls(4)
        a = reducer.transform(np.ones(16))
        with pytest.raises(ShapeError):
            reducer.estimate_distance(a, a[:-1])

    @pytest.mark.parametrize("cls", ALL_REDUCERS)
    def test_matrix_input_flattened(self, cls):
        reducer = cls(4)
        data = np.arange(16.0)
        np.testing.assert_allclose(
            reducer.transform(data), reducer.transform(data.reshape(4, 4))
        )


class TestL2Estimation:
    @pytest.mark.parametrize("cls", ALL_REDUCERS)
    def test_lower_bound_property(self, cls):
        rng = np.random.default_rng(1)
        x, y = rng.normal(size=64), rng.normal(size=64)
        exact = lp_distance(x, y, 2.0)
        reducer = cls(8)
        estimate = reducer.estimate_distance(reducer.transform(x), reducer.transform(y))
        assert estimate <= exact + 1e-9

    @pytest.mark.parametrize("cls", ALL_REDUCERS)
    def test_accurate_on_smooth_signals(self, cls):
        x = smooth_signal(seed=2)
        y = smooth_signal(seed=3)
        exact = lp_distance(x, y, 2.0)
        reducer = cls(8)
        estimate = reducer.estimate_distance(reducer.transform(x), reducer.transform(y))
        assert estimate > 0.9 * exact  # low-frequency energy dominates

    def test_dct_full_length_exact(self):
        rng = np.random.default_rng(4)
        x, y = rng.normal(size=32), rng.normal(size=32)
        reducer = DctReducer(32)
        estimate = reducer.estimate_distance(reducer.transform(x), reducer.transform(y))
        assert estimate == pytest.approx(lp_distance(x, y, 2.0))

    def test_haar_full_length_exact_on_pow2(self):
        rng = np.random.default_rng(5)
        x, y = rng.normal(size=32), rng.normal(size=32)
        reducer = HaarReducer(32)
        estimate = reducer.estimate_distance(reducer.transform(x), reducer.transform(y))
        assert estimate == pytest.approx(lp_distance(x, y, 2.0))

    def test_haar_pads_non_pow2(self):
        x = np.ones(10)
        features = HaarReducer(4).transform(x)
        assert features.shape == (4,)


class TestHaar2d:
    def test_full_block_preserves_l2(self):
        rng = np.random.default_rng(7)
        x, y = rng.normal(size=(8, 8)), rng.normal(size=(8, 8))
        reducer = Haar2dReducer(8)
        estimate = reducer.estimate_distance(reducer.transform(x), reducer.transform(y))
        assert estimate == pytest.approx(lp_distance(x, y, 2.0))

    def test_truncation_lower_bound(self):
        rng = np.random.default_rng(8)
        x, y = rng.normal(size=(16, 16)), rng.normal(size=(16, 16))
        reducer = Haar2dReducer(4)
        estimate = reducer.estimate_distance(reducer.transform(x), reducer.transform(y))
        assert estimate <= lp_distance(x, y, 2.0) + 1e-9

    def test_feature_size(self):
        assert Haar2dReducer(4).transform(np.ones((16, 16))).shape == (16,)

    def test_accurate_on_blockwise_smooth_tables(self):
        """2-D coarse coefficients capture region structure that the
        flattened 1-D reduction scrambles."""
        rng = np.random.default_rng(9)
        x = np.kron(rng.normal(size=(4, 4)), np.ones((8, 8)))
        y = np.kron(rng.normal(size=(4, 4)), np.ones((8, 8)))
        x += 0.01 * rng.normal(size=x.shape)
        y += 0.01 * rng.normal(size=y.shape)
        exact = lp_distance(x, y, 2.0)
        reducer = Haar2dReducer(4)  # 16 coefficients
        estimate = reducer.estimate_distance(reducer.transform(x), reducer.transform(y))
        assert estimate > 0.95 * exact

    def test_non_pow2_padded(self):
        features = Haar2dReducer(2).transform(np.ones((5, 9)))
        assert features.shape == (4,)

    def test_validation(self):
        with pytest.raises(ParameterError):
            Haar2dReducer(0)
        with pytest.raises(ShapeError):
            Haar2dReducer(2).transform(np.ones(8))
        with pytest.raises(ParameterError):
            Haar2dReducer(64).transform(np.ones((4, 4)))
        reducer = Haar2dReducer(2)
        a = reducer.transform(np.ones((4, 4)))
        with pytest.raises(ShapeError):
            reducer.estimate_distance(a, a[:-1])


class TestWhyTransformsFailForOtherP:
    """The paper's related-work claim, as an executable fact: transform
    truncations track L2 but are systematically wrong for L1 on signals
    with localised differences."""

    @pytest.mark.parametrize("cls", ALL_REDUCERS)
    def test_l1_estimation_is_poor_on_spiky_differences(self, cls):
        rng = np.random.default_rng(6)
        x = rng.normal(size=64)
        y = x.copy()
        y[::8] += 3.0  # sparse, spiky difference: wideband in frequency
        exact_l1 = lp_distance(x, y, 1.0)
        reducer = cls(8)
        estimate = reducer.estimate_distance(reducer.transform(x), reducer.transform(y))
        # Interpreted as an L1 estimate, the truncated-transform distance
        # is off by a large factor, unlike stable sketches.
        assert abs(estimate - exact_l1) / exact_l1 > 0.4
