"""Tests for repro.stable.sampler: correctness of the CMS sampler.

Failure probability
-------------------
Every Monte Carlo assertion here runs with a fixed seed, so the suite
itself is deterministic (audited by ``test_determinism.py``).  The
documented bounds are the chance a *fresh* seed would trip the
tolerance — what a future seed bump is risking:

* Two-sample KS gates at ``D < eps`` with equal sample sizes ``N``
  satisfy the DKW/Massart bound ``P(D > eps) <= 2 exp(-N eps^2)``:
  about ``4e-9`` for (N=200k, eps=0.01), ``2e-13`` for (N=300k,
  eps=0.01), and ``1.1e-3`` for the tighter alpha-continuity gate
  (N=300k, eps=0.005).
* Mean/variance/quantile gates sit 5-8 standard errors from their
  targets (per-test comments give the arithmetic), so each is
  ``<= 1e-6`` under the CLT.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.stable import (
    empirical_characteristic_function,
    ks_two_sample_statistic,
    sample_cauchy,
    sample_gaussian,
    sample_levy,
    sample_standard_stable,
    sample_symmetric_stable,
    stable_characteristic_function,
)


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestValidation:
    def test_alpha_zero_rejected(self):
        with pytest.raises(ParameterError):
            sample_symmetric_stable(0.0, 10, rng())

    def test_alpha_above_two_rejected(self):
        with pytest.raises(ParameterError):
            sample_symmetric_stable(2.5, 10, rng())

    def test_negative_alpha_rejected(self):
        with pytest.raises(ParameterError):
            sample_symmetric_stable(-1.0, 10, rng())

    def test_beta_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            sample_standard_stable(1.5, 1.5, 10, rng())

    def test_shape_respected(self):
        draws = sample_symmetric_stable(1.3, (4, 5), rng())
        assert draws.shape == (4, 5)

    def test_scalar_size(self):
        draws = sample_symmetric_stable(0.8, 7, rng())
        assert draws.shape == (7,)


class TestSpecialCases:
    """The CMS output must match the closed-form special cases."""

    N = 200_000

    def test_alpha_two_is_gaussian_variance_two(self):
        draws = sample_symmetric_stable(2.0, self.N, rng(1))
        # Variance of the S1 alpha=2 law is 2.  Standard errors at
        # N=200k: sd(var) = sqrt(2 sigma^4 / N) ~ 0.0063 (gate is 8
        # sigma), sd(mean) = sqrt(2/N) ~ 0.0032 (gate is 6 sigma).
        assert abs(np.var(draws) - 2.0) < 0.05
        assert abs(np.mean(draws)) < 0.02

    def test_alpha_two_matches_direct_gaussian(self):
        cms = sample_symmetric_stable(2.0, self.N, rng(2))
        direct = sample_gaussian(self.N, rng(3))
        assert ks_two_sample_statistic(cms, direct) < 0.01

    def test_alpha_one_matches_cauchy(self):
        cms = sample_symmetric_stable(1.0, self.N, rng(4))
        direct = sample_cauchy(self.N, rng(5))
        assert ks_two_sample_statistic(cms, direct) < 0.01

    def test_cauchy_quartiles(self):
        draws = sample_symmetric_stable(1.0, self.N, rng(6))
        # Standard Cauchy quartiles are at -1 and +1.  Empirical
        # quantile sd = sqrt(q(1-q)/N) / f(x_q) ~ 0.006 at N=200k with
        # the Cauchy density 1/(2 pi) at +-1, so the gate is ~5 sigma.
        q25, q75 = np.quantile(draws, [0.25, 0.75])
        assert abs(q25 + 1.0) < 0.03
        assert abs(q75 - 1.0) < 0.03

    def test_levy_matches_cms_skewed_half(self):
        closed_form = sample_levy(self.N, rng(7))
        cms = sample_standard_stable(0.5, 1.0, self.N, rng(8))
        assert ks_two_sample_statistic(closed_form, cms) < 0.01

    def test_levy_is_positive(self):
        draws = sample_levy(10_000, rng(9))
        assert np.all(draws > 0)


class TestCharacteristicFunction:
    """E[cos(tX)] must equal exp(-|t|^alpha) for the symmetric law."""

    N = 400_000
    TS = np.array([0.1, 0.3, 0.7, 1.0, 1.8, 3.0])

    @pytest.mark.parametrize("alpha", [0.25, 0.5, 0.8, 1.0, 1.2, 1.5, 1.9, 2.0])
    def test_empirical_cf_matches_theory(self, alpha):
        draws = sample_symmetric_stable(alpha, self.N, rng(int(alpha * 100)))
        empirical = empirical_characteristic_function(self.TS, draws)
        theory = stable_characteristic_function(self.TS, alpha)
        # Monte Carlo noise on mean(cos) is ~1/sqrt(N) ~ 0.0016, so the
        # gate is ~6 sigma per t; union-bounding over 6 ts and 8 alphas
        # keeps a fresh-seed failure below 1e-7.
        assert np.max(np.abs(empirical - theory)) < 0.01

    def test_symmetry(self):
        draws = sample_symmetric_stable(1.4, self.N, rng(42))
        # Median of a symmetric law is 0.
        assert abs(np.median(draws)) < 0.01


class TestStabilityProperty:
    """a1 X1 + a2 X2 must be distributed as ||(a1, a2)||_alpha X."""

    N = 300_000

    @pytest.mark.parametrize("alpha", [0.5, 0.75, 1.0, 1.5, 2.0])
    def test_two_term_stability(self, alpha):
        generator = rng(int(alpha * 1000))
        x1 = sample_symmetric_stable(alpha, self.N, generator)
        x2 = sample_symmetric_stable(alpha, self.N, generator)
        a1, a2 = 0.7, 1.9
        combined = a1 * x1 + a2 * x2
        scale = (abs(a1) ** alpha + abs(a2) ** alpha) ** (1.0 / alpha)
        reference = scale * sample_symmetric_stable(alpha, self.N, generator)
        assert ks_two_sample_statistic(combined, reference) < 0.01

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 1.5])
    def test_negative_coefficients(self, alpha):
        generator = rng(int(alpha * 2000) + 1)
        x1 = sample_symmetric_stable(alpha, self.N, generator)
        x2 = sample_symmetric_stable(alpha, self.N, generator)
        a1, a2 = -1.3, 0.4
        combined = a1 * x1 + a2 * x2
        scale = (abs(a1) ** alpha + abs(a2) ** alpha) ** (1.0 / alpha)
        reference = scale * sample_symmetric_stable(alpha, self.N, generator)
        assert ks_two_sample_statistic(combined, reference) < 0.01


class TestAgainstScipy:
    """Independent cross-check against scipy's levy_stable (test-only dep)."""

    def test_quantiles_match_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        alpha = 0.7
        draws = sample_symmetric_stable(alpha, 200_000, rng(11))
        qs = [0.2, 0.4, 0.6, 0.8]
        ours = np.quantile(draws, qs)
        # scipy's S1 parameterisation with beta=0 matches ours.
        theirs = scipy_stats.levy_stable.ppf(qs, alpha, 0.0)
        assert np.allclose(ours, theirs, rtol=0.05, atol=0.02)


def test_reproducibility_same_seed():
    a = sample_symmetric_stable(1.2, 100, rng(123))
    b = sample_symmetric_stable(1.2, 100, rng(123))
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ():
    a = sample_symmetric_stable(1.2, 100, rng(123))
    b = sample_symmetric_stable(1.2, 100, rng(124))
    assert not np.array_equal(a, b)


def test_alpha_near_one_continuity():
    """The alpha ~ 1 branch switch must not create a distributional jump."""
    n = 300_000
    just_below = sample_symmetric_stable(1.0 - 5e-10, n, rng(55))
    exactly_one = sample_symmetric_stable(1.0, n, rng(55))
    # Sharing the seed makes the two streams near-coupled, so the
    # realised KS is far below even this tight gate (the a-priori
    # independent-sample bound 2 exp(-n eps^2) ~ 1.1e-3 is the
    # worst case documented in the module docstring).
    assert ks_two_sample_statistic(just_below, exactly_one) < 0.005


def test_heavy_tails_grow_as_alpha_shrinks():
    """Smaller alpha means heavier tails: compare tail quantiles."""
    n = 200_000
    q99 = []
    for alpha in (0.5, 1.0, 1.5, 2.0):
        draws = np.abs(sample_symmetric_stable(alpha, n, rng(7)))
        q99.append(np.quantile(draws, 0.999))
    assert q99[0] > q99[1] > q99[2] > q99[3]
