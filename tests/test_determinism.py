"""Tier-1 determinism: seeded RNG audit and reproducible hypothesis runs.

The statistical tests in this suite (``test_stable_*``,
``test_core_estimators``, ``test_properties``) assert Monte Carlo
quantities against tolerances.  They are deterministic *given their
seeds*; the audit here guarantees the seeds are actually fixed, and the
hypothesis profile in ``conftest.py`` guarantees property tests explore
the same examples every run.  Each statistical test documents its
a-priori failure probability — the chance a *fresh* seed would land
outside the tolerance band — so a future seed bump is a calculated
risk, not a dice roll.
"""

from __future__ import annotations

import pathlib
import re

from hypothesis import settings


def test_no_unseeded_numpy_randomness_in_tests():
    """No test module uses the legacy global numpy generator.

    Calls through the legacy module-level generator share mutable
    global state, so test order changes results and reruns are
    unreproducible.  Anything other than ``default_rng`` /
    ``Generator`` / ``SeedSequence`` off the random module fails the
    audit.
    """
    allowed = {"default_rng", "Generator", "SeedSequence"}
    pattern = re.compile(r"np\.random\.(\w+)")
    offenders = []
    for path in sorted(pathlib.Path(__file__).parent.glob("test_*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for name in pattern.findall(line):
                if name not in allowed:
                    offenders.append(f"{path.name}:{lineno}: np.random.{name}")
    assert not offenders, (
        "unseeded/global numpy RNG in tests (use np.random.default_rng(seed)):\n"
        + "\n".join(offenders)
    )


def test_no_bare_random_module_in_tests():
    """Stdlib ``random.<fn>`` module-level calls are banned in tests too.

    ``random.Random(seed)`` instances are fine (the retry tests inject
    them); the shared module-level generator is not.
    """
    pattern = re.compile(r"(?<![\w.])random\.(random|randint|uniform|choice|"
                         r"shuffle|sample|gauss)\(")
    offenders = []
    for path in sorted(pathlib.Path(__file__).parent.glob("test_*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line):
                offenders.append(f"{path.name}:{lineno}: {line.strip()}")
    assert not offenders, (
        "module-level stdlib random in tests (use random.Random(seed)):\n"
        + "\n".join(offenders)
    )


def test_hypothesis_profile_is_deterministic_by_default():
    """Tier-1 runs under the derandomized profile (see conftest.py).

    ``HYPOTHESIS_PROFILE=explore`` deliberately re-randomizes for local
    bug hunts; that must never be the ambient default.
    """
    import os

    expected = os.environ.get("HYPOTHESIS_PROFILE", "deterministic")
    profile = settings.get_profile(expected)
    if expected == "deterministic":
        assert profile.derandomize is True
    assert settings.default.deadline is None
