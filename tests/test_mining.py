"""Tests for repro.mining: neighbours and similar regions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExactLpOracle, PrecomputedSketchOracle, SketchGenerator, SketchPool
from repro.errors import ParameterError
from repro.mining import find_similar_regions, most_similar_pairs, nearest_neighbors
from repro.table import TileSpec


def clustered_tiles():
    """Ten tiles: 0-4 near zero, 5-9 near ten; tile 1 is tile 0's twin."""
    rng = np.random.default_rng(0)
    tiles = [rng.normal(size=(4, 4)) * 0.1 for _ in range(5)]
    tiles += [10.0 + rng.normal(size=(4, 4)) * 0.1 for _ in range(5)]
    tiles[1] = tiles[0] + 0.001
    return tiles


class TestNearestNeighbors:
    def test_twin_found_first(self):
        oracle = ExactLpOracle(clustered_tiles(), p=1.0)
        neighbors = nearest_neighbors(oracle, query=0, n_neighbors=3)
        assert neighbors[0][0] == 1
        assert all(index < 5 for index, _ in neighbors)

    def test_distances_sorted(self):
        oracle = ExactLpOracle(clustered_tiles(), p=2.0)
        neighbors = nearest_neighbors(oracle, query=3, n_neighbors=9)
        distances = [d for _, d in neighbors]
        assert distances == sorted(distances)

    def test_query_excluded(self):
        oracle = ExactLpOracle(clustered_tiles(), p=1.0)
        neighbors = nearest_neighbors(oracle, query=2, n_neighbors=9)
        assert 2 not in [index for index, _ in neighbors]

    def test_sketched_oracle_agrees_on_easy_data(self):
        tiles = clustered_tiles()
        gen = SketchGenerator(p=1.0, k=64, seed=1)
        sketched = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        exact = ExactLpOracle(tiles, p=1.0)
        approx_ids = {i for i, _ in nearest_neighbors(sketched, 0, 4)}
        exact_ids = {i for i, _ in nearest_neighbors(exact, 0, 4)}
        assert approx_ids == exact_ids

    def test_validation(self):
        oracle = ExactLpOracle(clustered_tiles(), p=1.0)
        with pytest.raises(ParameterError):
            nearest_neighbors(oracle, query=-1, n_neighbors=2)
        with pytest.raises(ParameterError):
            nearest_neighbors(oracle, query=0, n_neighbors=10)


class TestMostSimilarPairs:
    def test_twin_pair_first(self):
        oracle = ExactLpOracle(clustered_tiles(), p=1.0)
        pairs = most_similar_pairs(oracle, n_pairs=1)
        assert pairs[0][:2] == (0, 1)

    def test_count_and_order(self):
        oracle = ExactLpOracle(clustered_tiles(), p=1.0)
        pairs = most_similar_pairs(oracle, n_pairs=5)
        assert len(pairs) == 5
        distances = [d for _, _, d in pairs]
        assert distances == sorted(distances)

    def test_validation(self):
        oracle = ExactLpOracle(clustered_tiles(), p=1.0)
        with pytest.raises(ParameterError):
            most_similar_pairs(oracle, n_pairs=0)
        with pytest.raises(ParameterError):
            most_similar_pairs(oracle, n_pairs=100)


class TestSimilarRegions:
    def make_pool(self):
        """A table with a repeated motif: rows 0-15 repeat at rows 48-63."""
        rng = np.random.default_rng(2)
        data = rng.normal(size=(64, 64))
        data[48:64, :] = data[0:16, :] + rng.normal(size=(16, 64)) * 0.01
        gen = SketchGenerator(p=1.0, k=128, seed=3)
        return data, SketchPool(data, gen, min_exponent=2)

    def test_finds_planted_copy(self):
        _, pool = self.make_pool()
        query = TileSpec(0, 8, 16, 16)
        matches = find_similar_regions(pool, query, n_results=3, stride=(16, 8))
        top = matches[0].spec
        assert top.row == 48
        assert top.col == 8

    def test_results_sorted_and_non_overlapping(self):
        _, pool = self.make_pool()
        query = TileSpec(0, 0, 16, 16)
        matches = find_similar_regions(pool, query, n_results=5, stride=(8, 8))
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)
        for match in matches:
            spec = match.spec
            no_overlap = (
                spec.end_row <= query.row
                or query.end_row <= spec.row
                or spec.end_col <= query.col
                or query.end_col <= spec.col
            )
            assert no_overlap

    def test_overlapping_allowed_when_requested(self):
        _, pool = self.make_pool()
        query = TileSpec(0, 0, 16, 16)
        matches = find_similar_regions(
            pool, query, n_results=1, stride=(8, 8), exclude_overlapping=False
        )
        # The query itself is the best match for itself.
        assert matches[0].spec == query
        assert matches[0].distance == 0.0

    def test_disjoint_composition(self):
        _, pool = self.make_pool()
        query = TileSpec(0, 8, 16, 16)
        matches = find_similar_regions(
            pool, query, n_results=3, stride=(16, 8), composition="disjoint"
        )
        assert matches[0].spec.row == 48

    def test_validation(self):
        _, pool = self.make_pool()
        query = TileSpec(0, 0, 16, 16)
        with pytest.raises(ParameterError):
            find_similar_regions(pool, query, composition="mosaic")
        with pytest.raises(ParameterError):
            find_similar_regions(pool, query, n_results=0)
        with pytest.raises(ParameterError):
            find_similar_regions(pool, query, stride=(0, 4))

    def test_distinct_suppresses_overlapping_matches(self):
        _, pool = self.make_pool()
        query = TileSpec(0, 8, 16, 16)
        dense = find_similar_regions(pool, query, n_results=4, stride=(4, 4))
        distinct = find_similar_regions(
            pool, query, n_results=4, stride=(4, 4), distinct=True
        )
        # Dense results cluster around the planted twin; distinct ones
        # must be pairwise non-overlapping.
        for a_index, a in enumerate(distinct):
            for b in distinct[a_index + 1 :]:
                no_overlap = (
                    a.spec.end_row <= b.spec.row
                    or b.spec.end_row <= a.spec.row
                    or a.spec.end_col <= b.spec.col
                    or b.spec.end_col <= a.spec.col
                )
                assert no_overlap
        # The best match is identical in both modes.
        assert distinct[0].spec == dense[0].spec
