"""Tests for tracing spans, the Prometheus renderer/linter, and logging."""

import io
import json

from repro.obs.export import StructuredLogger, lint_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, default_tracer, span


class TestTracer:
    def test_span_records_duration_histogram(self):
        reg = MetricsRegistry()
        tracer = Tracer(reg)
        with tracer.span("stage.one"):
            pass
        snap = reg.snapshot()["span_seconds"]
        sample = snap["samples"][0]
        assert sample["labels"] == {"span": "stage.one"}
        assert sample["histogram"]["count"] == 1
        assert sample["histogram"]["total"] >= 0.0

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        records = {r["name"]: r for r in tracer.timeline()}
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["outer"]["parent_id"] is None
        # the outer span closes after (and therefore outlasts) the inner
        assert records["outer"]["duration"] >= records["inner"]["duration"]

    def test_attrs_survive_to_timeline(self):
        tracer = Tracer()
        with tracer.span("build", size="64x64", stream=2):
            pass
        record = tracer.timeline()[0]
        assert record["attrs"] == {"size": "64x64", "stream": "2"}

    def test_disabled_tracer_is_a_noop(self):
        tracer = Tracer()
        tracer.enabled = False
        with tracer.span("quiet"):
            pass
        assert tracer.timeline() == []

    def test_timeline_is_bounded(self):
        tracer = Tracer(max_spans=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        timeline = tracer.timeline()
        assert len(timeline) == 4
        assert timeline[-1]["name"] == "s9"

    def test_dump_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        path = tmp_path / "trace.json"
        tracer.dump_json(path)
        data = json.loads(path.read_text())
        assert data[0]["name"] == "a"
        assert isinstance(data[0]["duration"], float)

    def test_module_level_span_uses_default_tracer(self):
        default_tracer().clear()
        with span("module.level"):
            pass
        assert any(r["name"] == "module.level"
                   for r in default_tracer().timeline())

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert tracer.timeline()[0]["name"] == "boom"
        # stack unwound: a new span is a root again
        with tracer.span("after"):
            pass
        assert tracer.timeline()[-1]["parent_id"] is None


class TestPrometheusExport:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", help="Hits.", table="a b").inc(2)
        reg.gauge("live_bytes", help="Live.").set(5)
        reg.histogram("lat_seconds", edges=(0.1, 1.0), help="Latency.").record(0.5)
        return reg.snapshot()

    def test_render_lints_clean(self):
        text = render_prometheus(self._snapshot())
        assert lint_prometheus(text) == []

    def test_render_contents(self):
        text = render_prometheus(self._snapshot())
        assert '# TYPE hits_total counter' in text
        assert 'hits_total{table="a b"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert 'lat_seconds_sum 0.5' in text
        assert 'lat_seconds_count 1' in text

    def test_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", edges=(1.0, 2.0, 3.0))
        for v in (0.5, 1.5, 2.5, 9.0):
            h.record(v)
        text = render_prometheus(reg.snapshot())
        lines = [l for l in text.splitlines() if l.startswith("h_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == [1, 2, 3, 4]

    def test_lint_catches_breakage(self):
        assert lint_prometheus("what even is this line") != []
        # non-cumulative buckets
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\nh_count 3\n"
        )
        assert lint_prometheus(bad) != []

    def test_lint_requires_type_before_samples(self):
        assert lint_prometheus("orphan_metric 1\n") != []

    def test_label_values_escape_quotes_commas_and_newlines(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", table='she said "a,b"\nc\\d').inc()
        text = render_prometheus(reg.snapshot())
        assert lint_prometheus(text) == []
        assert 'table="she said \\"a,b\\"\\nc\\\\d"' in text

    def test_help_text_escapes_but_keeps_quotes(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", help='Counts "hits"\nper table.').inc()
        text = render_prometheus(reg.snapshot())
        assert lint_prometheus(text) == []
        assert '# HELP hits_total Counts "hits"\\nper table.' in text

    def test_explicit_inf_edge_emits_one_inf_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", edges=(1.0, float("inf")))
        h.record(0.5)
        h.record(99.0)
        text = render_prometheus(reg.snapshot())
        assert lint_prometheus(text) == []
        assert text.count('le="+Inf"') == 1
        assert 'h_seconds_bucket{le="+Inf"} 2' in text

    def test_lint_catches_duplicate_inf_bucket(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 1.0\nh_count 2\n"
        )
        assert any("duplicate le" in p for p in lint_prometheus(bad))

    def test_lint_catches_duplicate_label_keys(self):
        bad = (
            "# TYPE hits_total counter\n"
            'hits_total{table="a",table="b"} 1\n'
        )
        assert any("duplicate label" in p for p in lint_prometheus(bad))

    def test_lint_catches_unterminated_label_value(self):
        bad = (
            "# TYPE hits_total counter\n"
            'hits_total{table="a} 1\n'
        )
        assert lint_prometheus(bad) != []


class TestPrometheusExemplars:
    def _snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", edges=(0.1, 1.0), help="Latency.")
        h.record(0.05, trace_id="aaa111")
        h.record(0.5, trace_id="bbb222")
        h.record(5.0, trace_id="ccc333")
        return reg.snapshot()

    def test_exemplars_off_by_default(self):
        text = render_prometheus(self._snapshot())
        assert "# {" not in text
        assert lint_prometheus(text) == []

    def test_exemplars_render_per_bucket_and_lint_clean(self):
        text = render_prometheus(self._snapshot(), exemplars=True)
        assert 'lat_seconds_bucket{le="0.1"} 1 # {trace_id="aaa111"} 0.05' in text
        assert 'lat_seconds_bucket{le="1.0"} 2 # {trace_id="bbb222"} 0.5' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3 # {trace_id="ccc333"} 5.0' in text
        assert lint_prometheus(text) == []

    def test_explicit_inf_edge_carries_overflow_exemplar(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", edges=(1.0, float("inf")))
        h.record(99.0, trace_id="deadbeef")
        text = render_prometheus(reg.snapshot(), exemplars=True)
        assert 'h_seconds_bucket{le="+Inf"} 1 # {trace_id="deadbeef"} 99.0' in text
        assert lint_prometheus(text) == []

    def test_untraced_buckets_render_without_exemplar(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", edges=(1.0,))
        h.record(0.5)
        h.record(9.0, trace_id="abc")
        text = render_prometheus(reg.snapshot(), exemplars=True)
        assert 'h_seconds_bucket{le="1.0"} 1\n' in text
        assert 'h_seconds_bucket{le="+Inf"} 2 # {trace_id="abc"} 9.0' in text

    def test_lint_rejects_exemplar_on_gauge(self):
        bad = (
            "# TYPE g gauge\n"
            'g 1 # {trace_id="x"} 1.0\n'
        )
        assert any("exemplar" in p for p in lint_prometheus(bad))

    def test_lint_rejects_exemplar_exceeding_bucket_bound(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 1 # {trace_id="x"} 5.0\n'
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 5.0\nh_count 1\n"
        )
        assert any("above the bucket" in p for p in lint_prometheus(bad))

    def test_lint_rejects_oversized_exemplar_labels(self):
        bad = (
            "# TYPE h histogram\n"
            f'h_bucket{{le="+Inf"}} 1 # {{trace_id="{"x" * 200}"}} 0.5\n'
            "h_sum 0.5\nh_count 1\n"
        )
        assert any("128" in p or "label" in p for p in lint_prometheus(bad))

    def test_lint_rejects_malformed_exemplar_value(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1 # {trace_id="x"} notanumber\n'
            "h_sum 0.5\nh_count 1\n"
        )
        assert lint_prometheus(bad) != []


class TestStructuredLogger:
    def test_default_level_suppresses_info(self):
        stream = io.StringIO()
        logger = StructuredLogger("t", stream=stream)
        logger.info("request", op="ping")
        assert stream.getvalue() == ""
        logger.warning("slow_request", op="query")
        assert "slow_request" in stream.getvalue()

    def test_logfmt_fields(self):
        stream = io.StringIO()
        logger = StructuredLogger("t", level="info", stream=stream)
        logger.info("request", op="query", seconds=0.25)
        line = stream.getvalue().strip()
        assert "event=request" in line
        assert "op=query" in line
        assert "seconds=0.25" in line

    def test_logfmt_quotes_spaces(self):
        stream = io.StringIO()
        logger = StructuredLogger("t", level="info", stream=stream)
        logger.info("err", message="bad rectangle spec")
        assert 'message="bad rectangle spec"' in stream.getvalue()

    def test_json_format(self):
        stream = io.StringIO()
        logger = StructuredLogger("t", level="info", stream=stream, fmt="json")
        logger.info("request", op="stats")
        record = json.loads(stream.getvalue())
        assert record["event"] == "request"
        assert record["op"] == "stats"
        assert record["level"] == "info"

    def test_enabled_for(self):
        logger = StructuredLogger("t", level="warning", stream=io.StringIO())
        assert not logger.enabled_for("info")
        assert logger.enabled_for("error")
