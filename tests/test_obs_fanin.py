"""Fan-in merge regression tests: stats and telemetry roll-ups.

PR 7 added five ``ingest_*`` counters to every worker's registry; the
fleet aggregate must sum them (they live in the snapshot's embedded
registry dump, not its top level — exactly the spot a naive merge
misses).  Fleet latency quantiles must come from bucket arithmetic
when the shards share edges and degrade to per-shard p99s (flagged,
not crashed) when they do not.
"""

from __future__ import annotations

import json

from repro.obs.fanin import (
    INGEST_COUNTERS,
    merge_stats_snapshots,
    merge_telemetry_snapshots,
)


def counter_metric(value):
    return {"samples": [{"labels": {}, "value": value}]}


def stats_snapshot(
    requests=10, errors=1, queries=10, updates=0, deltas=0,
    edges=(0.01, 0.1, 1.0), counts=(5, 4, 1, 0), mean=0.05,
):
    return {
        "requests": {"query": requests},
        "errors": {"query": errors},
        "queries": queries,
        "metrics": {
            "sheds_total": counter_metric(2),
            "ingest_updates_total": counter_metric(updates),
            "ingest_deltas_total": counter_metric(deltas),
            "ingest_duplicates_total": counter_metric(1),
            "ingest_patched_maps_total": counter_metric(3),
            "ingest_invalidated_maps_total": counter_metric(0),
        },
        "latency_seconds": {
            "count": sum(counts),
            "mean": mean,
            "max": 0.9,
            "quantiles": {"p50": 0.02, "p99": 0.5},
            "edges": list(edges),
            "counts": list(counts),
            "total": mean * sum(counts),
        },
    }


class TestMergeStatsSnapshots:
    def test_ingest_counters_summed_into_aggregate(self):
        merged = merge_stats_snapshots({
            "s0": stats_snapshot(updates=7, deltas=70),
            "s1": stats_snapshot(updates=5, deltas=50),
        })
        assert merged["ingest"]["ingest_updates_total"] == 12
        assert merged["ingest"]["ingest_deltas_total"] == 120
        assert merged["ingest"]["ingest_duplicates_total"] == 2
        assert merged["ingest"]["ingest_patched_maps_total"] == 6
        assert set(merged["ingest"]) == set(INGEST_COUNTERS)

    def test_ingest_counters_zeroed_when_absent(self):
        snapshot = stats_snapshot()
        snapshot["metrics"] = {}
        merged = merge_stats_snapshots({"s0": snapshot})
        assert merged["ingest"] == {name: 0 for name in INGEST_COUNTERS}

    def test_fleet_quantiles_merge_when_edges_match(self):
        merged = merge_stats_snapshots({
            "s0": stats_snapshot(counts=(10, 0, 0, 0)),
            "s1": stats_snapshot(counts=(0, 0, 10, 0)),
        })
        quantiles = merged["latency_seconds"]["quantiles"]
        # Half the fleet's traffic is sub-10ms, half is in (0.1, 1.0]:
        # the merged p50 must sit at the first bucket's edge, the p99
        # inside the third — numbers no averaging of per-shard p99s
        # could produce.
        assert quantiles["p50"] <= 0.01
        assert 0.1 < quantiles["p99"] <= 1.0
        assert "latency_buckets_mismatched" not in merged
        assert merged["latency_seconds"]["count"] == 20

    def test_mismatched_edges_flagged_not_crashed(self):
        merged = merge_stats_snapshots({
            "s0": stats_snapshot(),
            "s1": stats_snapshot(edges=(0.5, 5.0), counts=(3, 1, 0)),
        })
        assert merged["latency_buckets_mismatched"] is True
        assert "quantiles" not in merged["latency_seconds"]
        # Exact sums survive: count/mean/max need no shared edges.
        assert merged["latency_seconds"]["count"] == 14
        assert merged["latency_p99_by_shard"] == {"s0": 0.5, "s1": 0.5}

    def test_garbage_shards_skipped(self):
        merged = merge_stats_snapshots({"s0": stats_snapshot(), "s1": None})
        assert merged["shards"] == 2
        assert merged["queries"] == 10


def telemetry_snapshot(
    qps=5.0, inflight=2, staleness=1.5, firing=(),
    edges=(0.01, 0.1, 1.0), counts=(8, 1, 1, 0),
):
    return {
        "rates": {"qps": qps, "errors_per_s": 0.0, "updates_per_s": None},
        "inflight": inflight,
        "staleness_seconds": staleness,
        "watermarks": {"calls": {"batch_id": "b9", "batches": 9}},
        "latency": {
            "edges": list(edges),
            "counts": list(counts),
            "count": sum(counts),
            "total": 0.5,
            "max": 0.8,
            "p99": 0.4,
        },
        "slo": {"firing": [dict(alert) for alert in firing]},
    }


class TestMergeTelemetrySnapshots:
    def test_rates_sum_and_none_rates_skip(self):
        merged = merge_telemetry_snapshots({
            "s0": telemetry_snapshot(qps=5.0),
            "s1": telemetry_snapshot(qps=7.0),
        })
        assert merged["rates"]["qps"] == 12.0
        assert merged["rates"]["errors_per_s"] == 0.0
        # updates_per_s was None on every shard: absent, not 0-summed.
        assert "updates_per_s" not in merged["rates"]
        assert merged["inflight"] == 4.0

    def test_staleness_takes_fleet_worst(self):
        merged = merge_telemetry_snapshots({
            "s0": telemetry_snapshot(staleness=1.5),
            "s1": telemetry_snapshot(staleness=90.0),
        })
        assert merged["staleness_seconds"] == 90.0
        assert merged["staleness_by_shard"] == {"s0": 1.5, "s1": 90.0}

    def test_watermarks_nest_per_shard(self):
        merged = merge_telemetry_snapshots({"s0": telemetry_snapshot()})
        assert merged["watermarks"]["s0"]["calls"]["batch_id"] == "b9"

    def test_alerts_pool_with_shard_stamps(self):
        alert = {"kind": "slo_burn_rate", "slo": "staleness", "state": "firing"}
        merged = merge_telemetry_snapshots({
            "s0": telemetry_snapshot(),
            "s1": telemetry_snapshot(firing=[alert]),
        })
        assert merged["slo_firing"] == [dict(alert, shard="s1")]
        assert merged["slo_firing_by_shard"] == {"s0": 0, "s1": 1}

    def test_latency_buckets_merge_when_edges_match(self):
        merged = merge_telemetry_snapshots({
            "s0": telemetry_snapshot(counts=(10, 0, 0, 0)),
            "s1": telemetry_snapshot(counts=(0, 0, 10, 0)),
        })
        assert merged["latency"]["count"] == 20
        assert merged["latency"]["p50"] <= 0.01
        assert 0.1 < merged["latency"]["p99"] <= 1.0

    def test_mismatched_edges_flagged_with_per_shard_p99s(self):
        merged = merge_telemetry_snapshots({
            "s0": telemetry_snapshot(),
            "s1": telemetry_snapshot(edges=(0.5, 5.0), counts=(3, 1, 0)),
        })
        assert merged["latency_buckets_mismatched"] is True
        assert "latency" not in merged
        assert merged["latency_p99_by_shard"] == {"s0": 0.4, "s1": 0.4}

    def test_merge_output_is_json_safe(self):
        merged = merge_telemetry_snapshots({
            "s0": telemetry_snapshot(), "s1": None,
        })
        json.dumps(merged)
        assert merged["shards"] == 2
