"""Integration tests: whole workflows across subsystem boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ExactLpOracle,
    PrecomputedSketchOracle,
    SketchGenerator,
    SketchPool,
    StreamingSketch,
    TableStore,
    TileSpec,
    estimate_distance,
    load_pool,
    load_sketch_matrix,
    lp_distance,
    save_pool,
    save_sketch_matrix,
    sketch_grid,
    write_table,
)
from repro.cluster import KMeans
from repro.data import (
    CallVolumeConfig,
    generate_call_volume,
    load_csv,
)
from repro.metrics import clustering_quality, confusion_matrix_agreement
from repro.mining import find_similar_regions, nearest_neighbors


class TestStoreToClusteringPipeline:
    """Disk store -> tiles -> sketched k-means -> quality vs exact."""

    def test_full_pipeline(self, tmp_path):
        table = generate_call_volume(CallVolumeConfig(n_stations=64, n_days=2, seed=0))
        path = tmp_path / "volume.rtbl"
        write_table(path, table.values, chunk_shape=(16, 36))

        with TableStore(path) as store:
            store.verify()
            data = store.read_all()

        grid = table.grid((16, 72))
        tiles = [data[spec.slices] for spec in grid]
        gen = SketchGenerator(p=1.0, k=96, seed=1)
        sketched_oracle = PrecomputedSketchOracle(sketch_grid(data, grid, gen), 1.0)
        exact_oracle = ExactLpOracle(tiles, 1.0)

        kmeans = KMeans(4, max_iter=25, seed=2)
        sketched = kmeans.fit(sketched_oracle)
        exact = kmeans.fit(exact_oracle)

        agreement = confusion_matrix_agreement(exact.labels, sketched.labels, 4)
        quality = clustering_quality(exact_oracle, exact.labels, sketched.labels)
        assert agreement > 0.5
        assert quality > 0.8


class TestPersistenceWorkflow:
    """Preprocess once, save, load elsewhere, mine."""

    def test_sketch_matrix_round_trip_preserves_distances(self, tmp_path):
        data = np.random.default_rng(3).normal(size=(64, 96))
        from repro.table import TileGrid

        grid = TileGrid(data.shape, (16, 16))
        gen = SketchGenerator(p=0.5, k=64, seed=4)
        matrix = sketch_grid(data, grid, gen)
        path = tmp_path / "sketches.npz"
        save_sketch_matrix(path, matrix, gen.direct_key((16, 16)))

        loaded_matrix, key = load_sketch_matrix(path)
        original = PrecomputedSketchOracle(matrix, 0.5)
        restored = PrecomputedSketchOracle(loaded_matrix, key.p)
        for i, j in [(0, 1), (3, 8), (5, 20)]:
            assert restored.distance(i, j) == pytest.approx(original.distance(i, j))

    def test_pool_round_trip_preserves_region_search(self, tmp_path):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(64, 64))
        # Plant the twin on the (8, 8) scan lattice used below.
        data[40:56, 8:24] = data[0:16, 8:24] + rng.normal(size=(16, 16)) * 0.01
        pool = SketchPool(data, SketchGenerator(p=1.0, k=128, seed=6), min_exponent=2)
        query = TileSpec(0, 8, 16, 16)
        before = find_similar_regions(pool, query, n_results=3, stride=(8, 8))

        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        after = find_similar_regions(load_pool(path), query, n_results=3, stride=(8, 8))
        assert [m.spec for m in after] == [m.spec for m in before]
        assert after[0].spec.row == 40


class TestStreamingConsistency:
    """A stream of updates tracks the batch view of the same table."""

    def test_streamed_day_matches_batch_distance(self):
        rng = np.random.default_rng(7)
        yesterday = rng.poisson(20.0, size=(16, 24)).astype(float)
        today = yesterday + rng.integers(-3, 4, size=(16, 24)).astype(float)

        base = StreamingSketch.from_array(yesterday, p=1.0, k=256, seed=8)
        live = StreamingSketch.from_array(yesterday, p=1.0, k=256, seed=8)
        delta = today - yesterday
        rows, cols = np.nonzero(delta)
        live.update_many(rows, cols, delta[rows, cols])

        exact = lp_distance(yesterday, today, 1.0)
        approx = base.estimate_distance(live)
        assert abs(approx - exact) / exact < 0.3

    def test_streaming_drift_detection_scenario(self):
        """Norm of the difference sketch grows as a table drifts."""
        rng = np.random.default_rng(9)
        reference = rng.poisson(30.0, size=(8, 8)).astype(float)
        ref_sketch = StreamingSketch.from_array(reference, p=1.0, k=256, seed=10)

        drift_norms = []
        current = reference.copy()
        live = StreamingSketch.from_array(reference, p=1.0, k=256, seed=10)
        for step in range(3):
            row, col = int(rng.integers(8)), int(rng.integers(8))
            live.update(row, col, 50.0)
            current[row, col] += 50.0
            diff_estimate = live.estimate_distance(ref_sketch)
            drift_norms.append(diff_estimate)
        assert drift_norms[0] < drift_norms[-1]
        exact = lp_distance(current, reference, 1.0)
        assert abs(drift_norms[-1] - exact) / exact < 0.35


class TestCsvToMiningPipeline:
    def test_csv_to_nearest_neighbors(self, tmp_path):
        rng = np.random.default_rng(11)
        values = rng.normal(size=(12, 40))
        values[9] = values[2] + rng.normal(size=40) * 0.01  # near-duplicate rows
        path = tmp_path / "table.csv"
        path.write_text(
            "\n".join(",".join(f"{v:.6f}" for v in row) for row in values) + "\n"
        )

        table = load_csv(path)
        gen = SketchGenerator(p=2.0, k=128, seed=12)
        rows = [table.values[i] for i in range(table.shape[0])]
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(rows))
        neighbors = nearest_neighbors(oracle, query=2, n_neighbors=1)
        assert neighbors[0][0] == 9


class TestStitchedStorePipeline:
    def test_per_day_files_to_clustering(self, tmp_path):
        """Days written as separate store files, stitched, tiled across
        file boundaries and clustered — the paper's operational layout."""
        from repro.table import StitchedStore

        paths = []
        for day in range(3):
            table = generate_call_volume(
                CallVolumeConfig(n_stations=64, n_days=1, seed=day)
            )
            path = tmp_path / f"day{day}.rtbl"
            write_table(path, table.values, chunk_shape=(16, 36))
            paths.append(path)

        with StitchedStore(paths) as store:
            assert store.shape == (64, 3 * 144)
            # Tiles of 1.5 days deliberately straddle file boundaries.
            specs = [
                TileSpec(row, col, 16, 216)
                for row in range(0, 64, 16)
                for col in (0, 216)
            ]
            tiles = [store.read_tile(spec) for spec in specs]

        gen = SketchGenerator(p=1.0, k=64, seed=9)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        result = KMeans(3, seed=0).fit(oracle)
        assert result.n_clusters == 3
        assert result.converged


class TestPoolAgainstDirectSketches:
    def test_grid_queries_consistent_with_exact_ranking(self):
        """Pool compound estimates preserve the ranking of clearly
        separated distances."""
        rng = np.random.default_rng(13)
        data = rng.normal(size=(64, 64))
        data[32:48, 0:16] = data[0:16, 0:16] + rng.normal(size=(16, 16)) * 0.05
        pool = SketchPool(data, SketchGenerator(p=1.0, k=128, seed=14), min_exponent=2)
        query = pool.sketch_for(TileSpec(0, 0, 16, 16))
        twin = pool.sketch_for(TileSpec(32, 0, 16, 16))
        unrelated = pool.sketch_for(TileSpec(16, 40, 16, 16))
        assert estimate_distance(query, twin) < estimate_distance(query, unrelated)
