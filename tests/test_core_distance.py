"""Tests for repro.core.distance: the three oracle modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ExactLpOracle,
    OnDemandSketchOracle,
    PrecomputedSketchOracle,
    SketchGenerator,
    lp_distance,
    sketch_grid,
)
from repro.errors import IncompatibleSketchError, ParameterError, ShapeError
from repro.table import TileGrid


def make_tiles(n=10, shape=(6, 6), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=shape) for _ in range(n)]


class TestExactOracle:
    def test_distance_matches_lp(self):
        tiles = make_tiles()
        oracle = ExactLpOracle(tiles, p=1.3)
        assert oracle.distance(0, 1) == pytest.approx(lp_distance(tiles[0], tiles[1], 1.3))

    def test_stats_counting(self):
        tiles = make_tiles(shape=(4, 4))
        oracle = ExactLpOracle(tiles, p=1.0)
        oracle.distance(0, 1)
        assert oracle.stats.comparisons == 1
        assert oracle.stats.elements_touched == 32

    def test_center_is_mean(self):
        tiles = make_tiles(n=4)
        oracle = ExactLpOracle(tiles, p=2.0)
        center = oracle.center_of([0, 1])
        expected = (tiles[0].ravel() + tiles[1].ravel()) / 2
        np.testing.assert_allclose(center, expected)

    def test_distance_to_center(self):
        tiles = make_tiles()
        oracle = ExactLpOracle(tiles, p=0.5)
        center = oracle.center_of([1, 2, 3])
        d = oracle.distance_to_center(0, center)
        expected = lp_distance(tiles[0].ravel(), center, 0.5)
        assert d == pytest.approx(expected)

    def test_distances_to_centers_matches_scalar(self):
        tiles = make_tiles(n=5)
        oracle = ExactLpOracle(tiles, p=1.0)
        centers = np.stack([oracle.center_of([0, 1]), oracle.center_of([2, 3])])
        matrix = oracle.distances_to_centers(centers)
        assert matrix.shape == (5, 2)
        for i in range(5):
            for c in range(2):
                assert matrix[i, c] == pytest.approx(
                    oracle.distance_to_center(i, centers[c])
                )

    def test_empty_center_rejected(self):
        oracle = ExactLpOracle(make_tiles(), p=1.0)
        with pytest.raises(ParameterError):
            oracle.center_of([])

    def test_item_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ExactLpOracle([np.ones((2, 2)), np.ones((3, 2))], p=1.0)

    def test_no_items_rejected(self):
        with pytest.raises(ParameterError):
            ExactLpOracle([], p=1.0)

    def test_bad_p(self):
        with pytest.raises(ParameterError):
            ExactLpOracle(make_tiles(), p=0.0)

    def test_median_center(self):
        tiles = make_tiles(n=5)
        oracle = ExactLpOracle(tiles, p=1.0, center="median")
        center = oracle.center_of([0, 1, 2])
        expected = np.median(np.stack([t.ravel() for t in tiles[:3]]), axis=0)
        np.testing.assert_allclose(center, expected)

    def test_auto_center_picks_median_for_small_p(self):
        tiles = make_tiles(n=4)
        low_p = ExactLpOracle(tiles, p=0.8, center="auto")
        high_p = ExactLpOracle(tiles, p=2.0, center="auto")
        median_like = ExactLpOracle(tiles, p=0.8, center="median")
        mean_like = ExactLpOracle(tiles, p=2.0, center="mean")
        np.testing.assert_allclose(
            low_p.center_of([0, 1, 2]), median_like.center_of([0, 1, 2])
        )
        np.testing.assert_allclose(
            high_p.center_of([0, 1, 2]), mean_like.center_of([0, 1, 2])
        )

    def test_median_center_resists_an_outlier_member(self):
        tiles = make_tiles(n=3, shape=(2, 2))
        tiles[2] = tiles[2] + 1000.0
        mean_oracle = ExactLpOracle(tiles, p=1.0, center="mean")
        median_oracle = ExactLpOracle(tiles, p=1.0, center="median")
        members = [0, 1, 2]
        mean_center = mean_oracle.center_of(members)
        median_center = median_oracle.center_of(members)
        assert np.max(np.abs(median_center)) < np.max(np.abs(mean_center))

    def test_bad_center_policy(self):
        with pytest.raises(ParameterError):
            ExactLpOracle(make_tiles(), p=1.0, center="mode")


class TestPrecomputedOracle:
    def test_estimates_close_to_exact(self):
        tiles = make_tiles(n=6, shape=(8, 8), seed=1)
        gen = SketchGenerator(p=1.0, k=256, seed=3)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        for i, j in [(0, 1), (2, 5), (3, 4)]:
            exact = lp_distance(tiles[i], tiles[j], 1.0)
            assert abs(oracle.distance(i, j) - exact) / exact < 0.25

    def test_from_grid_matrix(self):
        data = np.random.default_rng(2).normal(size=(16, 16))
        grid = TileGrid(data.shape, (8, 8))
        gen = SketchGenerator(p=2.0, k=64, seed=0)
        matrix = sketch_grid(data, grid, gen)
        oracle = PrecomputedSketchOracle(matrix, p=2.0)
        assert oracle.n_items == 4
        exact = lp_distance(data[:8, :8], data[:8, 8:], 2.0)
        assert abs(oracle.distance(0, 1) - exact) / exact < 0.4

    def test_stats_counting(self):
        gen = SketchGenerator(p=1.0, k=16, seed=0)
        oracle = PrecomputedSketchOracle.from_sketches(
            gen.sketch_many(make_tiles(n=3))
        )
        oracle.distance(0, 2)
        assert oracle.stats.comparisons == 1
        assert oracle.stats.elements_touched == 32

    def test_mixed_keys_rejected(self):
        g1 = SketchGenerator(p=1.0, k=8, seed=0)
        g2 = SketchGenerator(p=1.0, k=8, seed=1)
        tiles = make_tiles(n=2)
        with pytest.raises(IncompatibleSketchError):
            PrecomputedSketchOracle.from_sketches(
                [g1.sketch(tiles[0]), g2.sketch(tiles[1])]
            )

    def test_center_linearity_matches_raw_mean_sketch(self):
        tiles = make_tiles(n=4, shape=(5, 5), seed=7)
        gen = SketchGenerator(p=1.0, k=32, seed=9)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        center = oracle.center_of([0, 2])
        mean_tile = (tiles[0] + tiles[2]) / 2.0
        np.testing.assert_allclose(center, gen.sketch(mean_tile).values, atol=1e-8)

    def test_distances_to_centers_matches_scalar(self):
        tiles = make_tiles(n=5, shape=(4, 4), seed=3)
        gen = SketchGenerator(p=1.0, k=31, seed=2)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        centers = np.stack([oracle.center_of([0]), oracle.center_of([1, 2])])
        matrix = oracle.distances_to_centers(centers)
        for i in range(5):
            for c in range(2):
                assert matrix[i, c] == pytest.approx(
                    oracle.distance_to_center(i, centers[c])
                )

    def test_l2_auto_path(self):
        tiles = make_tiles(n=3, shape=(8, 8), seed=4)
        gen = SketchGenerator(p=2.0, k=128, seed=5)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        exact = lp_distance(tiles[0], tiles[1], 2.0)
        assert abs(oracle.distance(0, 1) - exact) / exact < 0.3

    def test_bad_matrix(self):
        with pytest.raises(ShapeError):
            PrecomputedSketchOracle(np.zeros((0, 4)), p=1.0)
        with pytest.raises(ShapeError):
            PrecomputedSketchOracle(np.zeros(4), p=1.0)


class TestOnDemandOracle:
    def make(self, n=6, shape=(6, 6), k=64, seed=0):
        tiles = make_tiles(n=n, shape=shape, seed=seed)
        fetched = []

        def fetch(i):
            fetched.append(i)
            return tiles[i]

        gen = SketchGenerator(p=1.0, k=k, seed=1)
        return tiles, fetched, OnDemandSketchOracle(fetch, n, gen)

    def test_builds_lazily(self):
        _, fetched, oracle = self.make()
        assert oracle.stats.sketches_built == 0
        oracle.distance(0, 1)
        assert sorted(fetched) == [0, 1]
        assert oracle.stats.sketches_built == 2

    def test_cached_after_first_use(self):
        _, fetched, oracle = self.make()
        oracle.distance(0, 1)
        oracle.distance(0, 1)
        oracle.distance(1, 0)
        assert sorted(fetched) == [0, 1]  # no refetch
        assert oracle.stats.sketches_built == 2

    def test_matches_precomputed(self):
        tiles, _, oracle = self.make(k=128)
        gen = SketchGenerator(p=1.0, k=128, seed=1)
        pre = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        assert oracle.distance(2, 3) == pytest.approx(pre.distance(2, 3))

    def test_build_cost_accounted(self):
        _, _, oracle = self.make(shape=(6, 6), k=64)
        oracle.distance(0, 1)
        assert oracle.stats.sketch_build_elements == 2 * 64 * 36

    def test_distances_to_centers_builds_all(self):
        _, fetched, oracle = self.make(n=4)
        center = np.zeros(oracle.k)
        oracle.distances_to_centers(center[np.newaxis, :])
        assert sorted(set(fetched)) == [0, 1, 2, 3]

    def test_bad_n(self):
        gen = SketchGenerator(p=1.0, k=4, seed=0)
        with pytest.raises(ParameterError):
            OnDemandSketchOracle(lambda i: np.zeros((2, 2)), 0, gen)

    def test_from_sketches_raises_clear_error(self):
        """Regression: the inherited classmethod used to die with an
        unrelated TypeError deep inside __init__; it must instead
        explain that on-demand oracles are built from a fetch callable."""
        gen = SketchGenerator(p=1.0, k=8, seed=0)
        sketches = gen.sketch_many(make_tiles(n=3))
        with pytest.raises(ParameterError, match="fetch"):
            OnDemandSketchOracle.from_sketches(sketches)


class TestStatsReset:
    def test_reset(self):
        oracle = ExactLpOracle(make_tiles(), p=1.0)
        oracle.distance(0, 1)
        oracle.stats.reset()
        assert oracle.stats.comparisons == 0
        assert oracle.stats.total_elements == 0


class TestPairwiseMatrix:
    @pytest.mark.parametrize("p", [0.5, 1.0, 2.0])
    def test_exact_matrix_matches_scalar_calls(self, p):
        tiles = make_tiles(n=6, seed=5)
        oracle = ExactLpOracle(tiles, p=p)
        matrix = oracle.pairwise_matrix()
        for i in range(6):
            for j in range(6):
                if i != j:
                    assert matrix[i, j] == pytest.approx(oracle.distance(i, j))
        np.testing.assert_allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)

    def test_sketch_matrix_matches_scalar_calls(self):
        tiles = make_tiles(n=5, seed=6)
        gen = SketchGenerator(p=1.0, k=33, seed=0)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        matrix = oracle.pairwise_matrix()
        for i in range(5):
            for j in range(i + 1, 5):
                assert matrix[i, j] == pytest.approx(oracle.distance(i, j))

    def test_on_demand_matrix_builds_all(self):
        tiles = make_tiles(n=4, seed=7)
        gen = SketchGenerator(p=1.0, k=16, seed=1)
        oracle = OnDemandSketchOracle(lambda i: tiles[i], 4, gen)
        oracle.pairwise_matrix()
        assert oracle.stats.sketches_built == 4

    def test_stats_counted(self):
        oracle = ExactLpOracle(make_tiles(n=5), p=1.0)
        oracle.pairwise_matrix()
        assert oracle.stats.comparisons == 10


class TestNonFiniteGuards:
    def test_sketch_rejects_nan(self):
        gen = SketchGenerator(p=1.0, k=4, seed=0)
        bad = np.ones((3, 3))
        bad[1, 1] = np.nan
        with pytest.raises(ParameterError):
            gen.sketch(bad)

    def test_sketch_rejects_inf(self):
        gen = SketchGenerator(p=1.0, k=4, seed=0)
        bad = np.ones((3, 3))
        bad[0, 0] = np.inf
        with pytest.raises(ParameterError):
            gen.sketch(bad)

    def test_lp_norm_rejects_nan(self):
        from repro.core import lp_norm

        with pytest.raises(ParameterError):
            lp_norm([1.0, np.nan], 1.0)

    def test_streaming_rejects_nan_delta(self):
        from repro.stream import StreamingSketch

        sketch = StreamingSketch(1.0, 4, (2, 2))
        with pytest.raises(ParameterError):
            sketch.update(0, 0, float("nan"))
