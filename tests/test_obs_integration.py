"""Integration tests: instrumented engine, server health op, request logs."""

import io
import threading

import numpy as np
import pytest

from repro.core.generator import SketchGenerator
from repro.core.pool import SketchPool
from repro.obs.export import StructuredLogger, lint_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.serve import Client, SketchEngine, SketchServer
from repro.serve.stats import EngineStats
from repro.table.tiles import TileSpec


@pytest.fixture
def engine():
    eng = SketchEngine(p=1.0, k=12, seed=3)
    eng.register_array("calls", np.random.default_rng(0).random((64, 64)))
    return eng


class TestEngineStatsThreadSafety:
    def test_hammered_from_threads(self):
        stats = EngineStats()
        errors = []
        stop = threading.Event()

        def record():
            for i in range(500):
                if i % 10 == 0:
                    stats.record_request("query", error=True)
                else:
                    stats.record_request("query", batch_size=2, seconds=0.001)

        def observe():
            while not stop.is_set():
                snap = stats.snapshot()
                # a consistent snapshot never has more latency samples
                # than completed requests
                if snap["latency_seconds"]["count"] > sum(snap["requests"].values()):
                    errors.append(snap)

        workers = [threading.Thread(target=record) for _ in range(6)]
        watcher = threading.Thread(target=observe)
        watcher.start()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stop.set()
        watcher.join()
        assert not errors
        assert stats.requests["query"] == 6 * 450
        assert stats.errors["query"] == 6 * 50
        assert stats.queries == 6 * 450 * 2
        assert stats.snapshot()["latency_seconds"]["count"] == 6 * 450

    def test_reset_during_recording_does_not_corrupt(self):
        stats = EngineStats()

        def record():
            for _ in range(300):
                stats.record_request("ping", seconds=0.0001)

        def reset():
            for _ in range(50):
                stats.reset()

        threads = [threading.Thread(target=record) for _ in range(3)]
        threads.append(threading.Thread(target=reset))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats.reset()
        snap = stats.snapshot()
        assert snap["requests"] == {}
        assert snap["latency_seconds"]["count"] == 0


class TestUnifiedRegistry:
    def test_one_snapshot_covers_every_subsystem(self, engine):
        engine.query([("calls", (0, 0, 8, 8), (16, 16, 8, 8))] * 3)
        snap = engine.registry.snapshot()
        for name in (
            "pool_map_builds_total",
            "pool_map_bytes",
            "fft_spectrum_cache_misses_total",
            "pipeline_maps_built_total",
            "planner_group_size",
            "planner_groups_total",
            "server_request_seconds",
            "server_requests_total",
            "budget_used_bytes",
            "span_seconds",
        ):
            assert name in snap, name
        builds = snap["pool_map_builds_total"]["samples"]
        assert any(s["labels"].get("table") == "calls" for s in builds)
        assert sum(s["value"] for s in builds) > 0

    def test_prometheus_render_lints_clean(self, engine):
        engine.query([("calls", (0, 0, 8, 8), (16, 16, 8, 8))])
        text = render_prometheus(engine.registry.snapshot())
        assert lint_prometheus(text) == []
        assert 'pool_map_builds_total{stream="0",table="calls"}' in text

    def test_span_timeline_has_nested_query_spans(self, engine):
        engine.query([("calls", (0, 0, 8, 8), (16, 16, 8, 8))])
        names = [r["name"] for r in engine.tracer.timeline()]
        assert "engine.query" in names
        assert "planner.execute" in names


class TestServerObservability:
    def test_health_op(self, engine):
        with SketchServer(engine, port=0) as server:
            server.start()
            with Client(*server.address) as client:
                client.query([("calls", (0, 0, 8, 8), (16, 16, 8, 8))])
                health = client.health()
        assert health["status"] == "ok"
        assert health["tables"] == 1
        assert health["requests"] >= 1
        assert health["uptime_seconds"] > 0

    def test_stats_op_exposes_latency_by_op_and_metrics(self, engine):
        with SketchServer(engine, port=0) as server:
            server.start()
            with Client(*server.address) as client:
                client.ping()
                client.query([("calls", (0, 0, 8, 8), (16, 16, 8, 8))])
                snap = client.stats()
        assert snap["latency_by_op"]["ping"]["count"] == 1
        assert snap["latency_by_op"]["query"]["count"] == 1
        assert "metrics" in snap
        assert lint_prometheus(render_prometheus(snap["metrics"])) == []

    def test_default_logging_is_quiet(self, engine):
        stream = io.StringIO()
        logger = StructuredLogger("t", stream=stream)  # warning-level default
        with SketchServer(engine, port=0, logger=logger) as server:
            server.start()
            with Client(*server.address) as client:
                client.ping()
                client.query([("calls", (0, 0, 8, 8), (16, 16, 8, 8))])
        assert stream.getvalue() == ""

    def test_info_logging_records_requests(self, engine):
        stream = io.StringIO()
        logger = StructuredLogger("t", level="info", stream=stream)
        with SketchServer(engine, port=0, logger=logger) as server:
            server.start()
            with Client(*server.address) as client:
                client.query([("calls", (0, 0, 8, 8), (16, 16, 8, 8))] * 2)
        line = stream.getvalue()
        assert "event=request" in line
        assert "op=query" in line
        assert "queries=2" in line

    def test_slow_query_log(self, engine):
        stream = io.StringIO()
        logger = StructuredLogger("t", stream=stream)  # warnings only
        with SketchServer(
            engine, port=0, logger=logger, slow_query_seconds=0.0
        ) as server:
            server.start()
            with Client(*server.address) as client:
                client.query([("calls", (0, 0, 8, 8), (16, 16, 8, 8))])
        assert "event=slow_request" in stream.getvalue()

    def test_errors_are_accounted_per_op(self, engine):
        from repro.errors import ProtocolError

        with SketchServer(engine, port=0) as server:
            server.start()
            with Client(*server.address) as client:
                with pytest.raises(ProtocolError):
                    client.query([])
        assert engine.stats.errors.get("query", 0) == 1


class TestPoolMetricRebinding:
    """``bind_metrics`` re-homes a pool's instruments without double-counting."""

    def _warm_pool(self):
        data = np.random.default_rng(4).normal(size=(64, 64))
        pool = SketchPool(data, SketchGenerator(p=1.0, k=16, seed=3))
        pool.sketch_for(TileSpec(0, 0, 8, 8))   # builds the 8x8 maps
        pool.sketch_for(TileSpec(8, 8, 8, 8))   # served from cache
        assert pool.maps_built > 0 and pool.map_hits > 0
        return pool

    def _builds_total(self, registry, **labels):
        total = 0
        for name, _, _, children in registry.collect():
            if name != "pool_map_builds_total":
                continue
            for child_labels, child in children:
                if all(child_labels.get(k) == str(v) for k, v in labels.items()):
                    total += child.value
        return total

    def test_bind_carries_accumulated_counts_exactly_once(self):
        pool = self._warm_pool()
        builds, hits = pool.maps_built, pool.map_hits
        registry = MetricsRegistry()
        pool.bind_metrics(registry, table="t")
        assert self._builds_total(registry, table="t") == builds
        assert registry.counter("pool_map_hits_total", table="t").value == hits

    def test_rebinding_to_the_same_registry_does_not_double_count(self):
        pool = self._warm_pool()
        builds, hits = pool.maps_built, pool.map_hits
        registry = MetricsRegistry()
        pool.bind_metrics(registry, table="t")
        pool.bind_metrics(registry, table="t")
        assert self._builds_total(registry, table="t") == builds
        assert registry.counter("pool_map_hits_total", table="t").value == hits

    def test_post_bind_work_lands_on_the_per_table_series(self):
        pool = self._warm_pool()
        registry = MetricsRegistry()
        pool.bind_metrics(registry, table="t")
        before = registry.counter("pool_map_hits_total", table="t").value
        pool.sketch_for(TileSpec(16, 16, 8, 8))  # more cache hits
        counter = registry.counter("pool_map_hits_total", table="t")
        # the counter tracks the pool exactly: new hits land once, on
        # the per-table series, with no residue from the pre-bind life
        assert counter.value == pool.map_hits > before

    def test_engine_registration_rebinds_under_the_table_label(self):
        pool = self._warm_pool()
        hits = pool.map_hits
        engine = SketchEngine(p=1.0, k=16, seed=3)
        engine.register_pool("warmed", pool)
        counter = engine.registry.counter("pool_map_hits_total", table="warmed")
        assert counter.value == hits
        # gauges re-home too: one per-table series, live values
        snapshot = engine.registry.snapshot()
        byte_samples = [
            s for s in snapshot["pool_map_bytes"]["samples"]
            if s["labels"].get("table") == "warmed"
        ]
        assert len(byte_samples) == 1
        assert byte_samples[0]["value"] == pool.nbytes
