"""Edge-case sweep: error branches and boundary shapes across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ExactLpOracle,
    SketchGenerator,
    SketchPool,
    TileSpec,
    estimate_distance,
)
from repro.cluster import KMeans
from repro.core.generator import SketchGenerator as Generator
from repro.errors import (
    ConvergenceError,
    EmptyClusterError,
    IncompatibleSketchError,
    ParameterError,
    ReproError,
    ShapeError,
    StoreError,
)
from repro.experiments.harness import format_table
from repro.fourier import cross_correlate2d_valid


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for cls in (
            ParameterError,
            ShapeError,
            IncompatibleSketchError,
            StoreError,
            ConvergenceError,
            EmptyClusterError,
        ):
            assert issubclass(cls, ReproError)

    def test_value_error_compatibility(self):
        # Callers catching stdlib ValueError still catch parameter abuse.
        assert issubclass(ParameterError, ValueError)
        assert issubclass(ShapeError, ValueError)
        assert issubclass(StoreError, IOError)

    def test_incompatible_is_shape_error(self):
        assert issubclass(IncompatibleSketchError, ShapeError)


class TestOneByOneShapes:
    """The smallest legal objects must work everywhere."""

    def test_sketch_single_cell(self):
        gen = SketchGenerator(p=1.0, k=4, seed=0)
        sketch = gen.sketch(np.array([[5.0]]))
        assert sketch.values.shape == (4,)

    def test_distance_between_single_cells(self):
        gen = SketchGenerator(p=1.0, k=129, seed=0)
        a = gen.sketch(np.array([[1.0]]))
        b = gen.sketch(np.array([[4.0]]))
        # |1 - 4| = 3; a single cell has no averaging, so the estimate
        # is 3 * median|S| / B_k ~ 3 within sketch error.
        assert estimate_distance(a, b) == pytest.approx(3.0, rel=0.5)

    def test_k_one_sketch(self):
        gen = SketchGenerator(p=1.0, k=1, seed=0)
        sketch = gen.sketch(np.ones((2, 2)))
        assert sketch.k == 1
        assert estimate_distance(sketch, sketch) == 0.0

    def test_one_by_n_tiles(self):
        gen = SketchGenerator(p=2.0, k=8, seed=0)
        row = np.arange(5.0)[np.newaxis, :]
        col = np.arange(5.0)[:, np.newaxis]
        assert gen.sketch(row).key != gen.sketch(col).key

    def test_correlation_with_full_size_kernel(self):
        data = np.random.default_rng(0).normal(size=(4, 4))
        out = cross_correlate2d_valid(data, data)
        assert out.shape == (1, 1)

    def test_pool_on_tiny_table(self):
        data = np.random.default_rng(1).normal(size=(4, 4))
        pool = SketchPool(data, SketchGenerator(p=1.0, k=4, seed=0), min_exponent=1)
        sketch = pool.sketch_for(TileSpec(0, 0, 2, 2))
        assert sketch.values.shape == (4,)


class TestGeneratorShapeNormalization:
    def test_reject_3d_shape(self):
        with pytest.raises(ShapeError):
            Generator._normalize_shape((2, 2, 2))

    def test_reject_zero_dim(self):
        with pytest.raises(ShapeError):
            Generator._normalize_shape((0, 4))

    def test_vector_shape_promoted(self):
        assert Generator._normalize_shape((7,)) == (1, 7)


class TestKMeansDegenerate:
    def test_all_identical_items(self):
        tiles = [np.ones((2, 2))] * 6
        result = KMeans(k=2, seed=0).fit(ExactLpOracle(tiles, p=1.0))
        assert result.spread == 0.0
        assert np.bincount(result.labels, minlength=2).min() >= 1

    def test_two_items_two_clusters(self):
        tiles = [np.zeros((2, 2)), np.ones((2, 2))]
        result = KMeans(k=2, seed=0).fit(ExactLpOracle(tiles, p=1.0))
        assert set(result.labels.tolist()) == {0, 1}


class TestFormatTableEdge:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_mixed_types(self):
        text = format_table(["x"], [[1], [2.5], ["s"]])
        assert "2.5" in text and "s" in text

    def test_empty_headers_rejected(self):
        with pytest.raises(ParameterError):
            format_table([], [])


class TestPoolExponentBounds:
    def test_exponent_outside_table_rejected(self):
        data = np.zeros((16, 16))
        pool = SketchPool(data, SketchGenerator(p=1.0, k=2, seed=0), min_exponent=2)
        with pytest.raises(ParameterError):
            pool._map(5, 2, 0)  # 2^5 = 32 > 16
        with pytest.raises(ParameterError):
            pool._map(2, 1, 0)  # below min_exponent


class TestSketchConstantData:
    def test_constant_tiles_at_distance_zero(self):
        gen = SketchGenerator(p=1.0, k=16, seed=0)
        a = gen.sketch(np.full((3, 3), 7.0))
        b = gen.sketch(np.full((3, 3), 7.0))
        assert estimate_distance(a, b) == 0.0

    def test_negative_values_fine(self):
        gen = SketchGenerator(p=0.5, k=64, seed=0)
        a = gen.sketch(-np.ones((4, 4)))
        b = gen.sketch(np.ones((4, 4)))
        assert estimate_distance(a, b) > 0.0
