"""Chaos tests for the sharded serving tier.

Failure semantics under real faults: a dead worker surfaces as a typed
:class:`~repro.errors.ShardUnavailableError` naming the shard, batches
touching only healthy shards keep answering bit-identically, transient
per-shard faults are absorbed by the pooled clients' retries, and a
worker draining mid-scatter still completes the in-flight sub-batch.
The spawned-cluster test runs the real thing end to end: two worker
*processes* memory-mapping one pool archive behind a router.
"""

from __future__ import annotations

import random
import threading
import time

import numpy as np
import pytest

from repro.core.generator import SketchGenerator
from repro.core.io import save_pool
from repro.core.pool import SketchPool
from repro.errors import (
    ConnectionLostError,
    ParameterError,
    RetriesExhaustedError,
    ServeError,
    ShardUnavailableError,
)
from repro.serve import RetryPolicy, SketchEngine, SketchServer
from repro.shard import ShardCluster, ShardRouter, ShardSpec, WorkerConfig
from repro.testing import DropBeforeSend, FaultPlan, flaky_connect

TABLES = ("alpha", "beta", "gamma")
OVERRIDES = {"alpha": "s0", "beta": "s1", "gamma": "s2"}
QUERIES = {
    name: (name, (0, 0, 8, 8), (16, 16, 8, 8)) for name in TABLES
}


def make_engine() -> SketchEngine:
    engine = SketchEngine(p=1.0, k=16, seed=2)
    for i, name in enumerate(TABLES):
        engine.register_array(
            name, np.random.default_rng(100 + i).normal(size=(64, 64))
        )
    return engine


@pytest.fixture()
def fleet():
    """Three in-process workers; tests may stop individual servers."""
    servers = [SketchServer(make_engine()) for _ in range(3)]
    try:
        for server in servers:
            server.start()
        yield servers
    finally:
        for server in servers:
            server.stop()


def specs_for(servers):
    return [ShardSpec(f"s{i}", *server.address)
            for i, server in enumerate(servers)]


def fast_router(servers, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=2, base_delay=0.01,
                                           max_delay=0.05))
    kwargs.setdefault("rng", random.Random(7))
    return ShardRouter(specs_for(servers), overrides=OVERRIDES, **kwargs)


def answers(source, queries):
    return [(r.distance, r.strategy) for r in source.query(queries)]


class TestOneShardDown:
    def test_dead_shard_surfaces_typed_with_its_name(self, fleet):
        fleet[1].stop()  # kill the worker owning "beta"
        with fast_router(fleet) as router:
            with pytest.raises(ShardUnavailableError, match="shard 's1'") as info:
                router.query([QUERIES["beta"]])
            assert info.value.code == "RETRY_LATER"
            assert isinstance(
                info.value.__cause__, (ConnectionLostError, RetriesExhaustedError)
            )

    def test_healthy_shards_keep_answering_bit_identically(self, fleet):
        reference = make_engine()
        fleet[1].stop()
        with fast_router(fleet) as router:
            healthy = [QUERIES["alpha"], QUERIES["gamma"]]
            expected = answers(reference, healthy)
            # A mixed batch touching the dead shard fails as a whole...
            with pytest.raises(ShardUnavailableError):
                router.query([QUERIES["alpha"], QUERIES["beta"]])
            # ...but batches on the survivors are untouched, before and
            # after the failure (the pool self-heals its clients).
            assert answers(router, healthy) == expected
            assert answers(router, healthy) == expected

    def test_health_reports_degraded_not_down(self, fleet):
        fleet[2].stop()
        with fast_router(fleet) as router:
            health = router.health()
            assert health["status"] == "degraded"
            assert health["shards_healthy"] == 2
            assert health["shards"]["s2"]["status"] == "unreachable"
            assert "s2" in health["shards"]["s2"]["error"]

    def test_tables_fall_back_to_a_surviving_replica(self, fleet):
        fleet[0].stop()  # the owner of "alpha"
        with fast_router(fleet) as router:
            tables = router.tables()
            # Metadata served by a survivor, still annotated with the
            # (currently dead) owner the ring assigns.
            assert set(tables) == set(TABLES)
            assert tables["alpha"]["shard"] == "s0"

    def test_stats_snapshot_records_unreachable_shards(self, fleet):
        fleet[1].stop()
        with fast_router(fleet) as router:
            snapshot = router.stats_snapshot()
            assert set(snapshot["shards"]) == {"s0", "s2"}
            assert set(snapshot["shards_unreachable"]) == {"s1"}
            assert snapshot["aggregate"]["shards"] == 2

    def test_whole_fleet_down_is_down(self, fleet):
        for server in fleet:
            server.stop()
        with fast_router(fleet) as router:
            assert router.health()["status"] == "down"
            with pytest.raises(ShardUnavailableError):
                router.tables()


class TestTransientFaults:
    def test_one_transient_fault_is_absorbed_by_retries(self, fleet):
        reference = make_engine()
        plans = {f"s{i}": FaultPlan() for i in range(3)}
        plans["s1"] = FaultPlan([DropBeforeSend()])  # fail once, recover

        def connect(spec, timeout):
            return flaky_connect(spec.host, spec.port, plans[spec.name])(timeout)

        with fast_router(fleet, connect=connect) as router:
            batch = [QUERIES["alpha"], QUERIES["beta"], QUERIES["gamma"]]
            assert answers(router, batch) == answers(reference, batch)
        assert plans["s1"].injected(DropBeforeSend) == 1

    def test_persistent_faults_exhaust_into_shard_unavailable(self, fleet):
        plans = {f"s{i}": FaultPlan() for i in range(3)}
        plans["s0"] = FaultPlan(default=DropBeforeSend())  # never recovers

        def connect(spec, timeout):
            return flaky_connect(spec.host, spec.port, plans[spec.name])(timeout)

        with fast_router(fleet, connect=connect) as router:
            with pytest.raises(ShardUnavailableError, match="shard 's0'") as info:
                router.query([QUERIES["alpha"]])
            assert isinstance(info.value.__cause__, RetriesExhaustedError)


class TestDrainDuringScatter:
    def test_drain_completes_the_inflight_sub_batch(self, fleet):
        # Make s1 slow, then drain it while a scatter is in flight: the
        # graceful drain finishes the sub-batch, so the router's caller
        # still gets the complete, correct gather.
        reference = make_engine()
        slow = fleet[1]
        original = slow.engine.query

        def slow_query(queries, timeout=None):
            time.sleep(0.5)
            return original(queries, timeout=timeout)

        slow.engine.query = slow_query
        batch = [QUERIES["alpha"], QUERIES["beta"], QUERIES["gamma"]]
        expected = answers(reference, batch)
        with fast_router(fleet, timeout=15.0) as router:
            results: list = []
            failures: list = []

            def caller():
                try:
                    results.append(answers(router, batch))
                except BaseException as exc:  # pragma: no cover - diagnostic
                    failures.append(exc)

            thread = threading.Thread(target=caller)
            thread.start()
            deadline = time.monotonic() + 5.0
            while slow.inflight == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert slow.inflight >= 1  # the scatter reached the slow shard
            assert slow.stop() is True  # drain, completing the sub-batch
            thread.join(timeout=15.0)
            assert not failures
            assert results == [expected]
            # After the drain the shard is gone for new batches.
            with pytest.raises(ShardUnavailableError, match="shard 's1'"):
                router.query([QUERIES["beta"]])


class TestSpawnedCluster:
    """The real thing: worker processes, one mmap'd archive, a router."""

    def test_end_to_end_parity_and_drain(self, tmp_path):
        data = np.random.default_rng(5).normal(size=(64, 64))
        archive = str(tmp_path / "t.npz")
        save_pool(archive, SketchPool(data, SketchGenerator(p=1.0, k=16, seed=3)))

        reference = SketchEngine(p=1.0, k=16, seed=3)
        reference.register_pool_archive("t", archive, mmap_mode="r")
        batch = [
            ("t", (0, 0, 8, 8), (16, 16, 8, 8)),
            ("t", (1, 1, 12, 12), (32, 32, 12, 12)),
            ("t", (0, 0, 16, 16), (32, 16, 16, 16), "disjoint"),
        ]
        expected = answers(reference, batch)

        configs = [
            WorkerConfig(f"s{i}", archives={"t": archive}, p=1.0, k=16, seed=3)
            for i in range(2)
        ]
        cluster = ShardCluster(configs, start_timeout=60.0)
        with cluster:
            with ShardRouter(cluster.specs, rng=random.Random(11)) as router:
                assert answers(router, batch) == expected
                health = router.health()
                assert health["status"] == "ok"
                assert health["shards_healthy"] == 2
                assert router.tables()["t"]["memory_mapped"] is True
        # Drained: the fleet is gone and says so.
        assert not cluster.running
        with pytest.raises(ServeError, match="not started"):
            cluster.specs

    def test_cluster_validation(self):
        with pytest.raises(ParameterError, match="at least one"):
            ShardCluster([])
        with pytest.raises(ParameterError, match="duplicate"):
            ShardCluster([WorkerConfig("a"), WorkerConfig("a")])
