"""Tests for cross-process trace propagation (client -> server -> planner).

One trace id, minted by the client, must thread through the wire frame,
the server's request handling, the engine, and the planner, land in the
structured request log, and come back over the ``trace`` wire op so
``repro trace`` can render the merged timeline.
"""

from __future__ import annotations

import io
import json
import socket

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.obs.export import StructuredLogger
from repro.obs.trace import render_trace
from repro.serve import Client, SketchEngine, SketchServer


@pytest.fixture(scope="module")
def stack():
    engine = SketchEngine(p=1.0, k=16, seed=2)
    engine.register_array(
        "t", np.random.default_rng(8).normal(size=(64, 64))
    )
    stream = io.StringIO()
    logger = StructuredLogger("t", level="info", stream=stream)
    with SketchServer(engine, logger=logger) as server:
        server.start()
        yield server, stream


@pytest.fixture()
def client(stack):
    server, _ = stack
    with Client(*server.address, timeout=10.0) as cli:
        yield cli


def _raw_roundtrip(server, payload: bytes) -> dict:
    with socket.create_connection(server.address, timeout=10.0) as sock:
        sock.sendall(payload)
        return json.loads(sock.makefile("rb").readline())


class TestPropagation:
    def test_one_trace_id_spans_both_processes(self, stack, client):
        server, _ = stack
        client.query([("t", (0, 0, 8, 8), (16, 16, 8, 8))])
        trace_id = client.last_trace_id
        assert trace_id is not None

        client_spans = [
            s for s in client.tracer.timeline() if s["trace_id"] == trace_id
        ]
        server_spans = server.engine.tracer.spans_for_trace(trace_id)
        assert {s["name"] for s in client_spans} == {"client.request"}
        names = {s["name"] for s in server_spans}
        assert {"server.request", "engine.query", "planner.execute"} <= names

    def test_each_request_gets_a_fresh_trace_id(self, client):
        client.ping()
        first = client.last_trace_id
        client.ping()
        assert client.last_trace_id != first

    def test_trace_ids_are_deterministic_under_a_seeded_rng(self, stack):
        server, _ = stack
        ids = []
        for _ in range(2):
            import random

            with Client(*server.address, rng=random.Random(99)) as cli:
                cli.ping()
                ids.append(cli.last_trace_id)
        assert ids[0] == ids[1]

    def test_request_log_carries_the_trace_id(self, stack, client):
        server, stream = stack
        client.query([("t", (0, 0, 8, 8), (16, 16, 8, 8))])
        trace_id = client.last_trace_id
        assert f"trace_id={trace_id}" in stream.getvalue()

    def test_server_root_span_records_the_remote_parent(self, stack, client):
        server, _ = stack
        client.query([("t", (0, 0, 8, 8), (16, 16, 8, 8))])
        trace_id = client.last_trace_id
        [client_span] = [
            s for s in client.tracer.timeline() if s["trace_id"] == trace_id
        ]
        [root] = [
            s for s in server.engine.tracer.spans_for_trace(trace_id)
            if s["name"] == "server.request"
        ]
        # attrs are stringified for the timeline; compare the int form
        assert int(root["attrs"]["remote_parent"]) == client_span["span_id"]


class TestTraceWireOp:
    def test_trace_op_returns_server_spans(self, client):
        client.query([("t", (0, 0, 8, 8), (16, 16, 8, 8))])
        trace_id = client.last_trace_id
        spans = client.trace(trace_id)
        assert isinstance(spans, list) and spans
        assert all(span["trace_id"] == trace_id for span in spans)

    def test_unknown_trace_returns_empty_list(self, client):
        assert client.trace("feedfacefeedface") == []

    def test_trace_op_requires_a_trace_id(self, stack):
        server, _ = stack
        response = _raw_roundtrip(server, b'{"op": "trace"}\n')
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"


class TestRenderedTimeline:
    def test_merged_tree_nests_server_under_client(self, stack, client):
        server, _ = stack
        client.query([("t", (0, 0, 8, 8), (16, 16, 8, 8))])
        trace_id = client.last_trace_id
        text = render_trace(
            {
                "client": client.tracer.timeline(),
                "server": client.trace(trace_id),
            },
            trace_id,
        )
        lines = text.splitlines()
        assert lines[0] == f"trace {trace_id}"
        indent = {
            name: next(
                line.index("- ") for line in lines if f"- {name} " in line
            )
            for name in ("client.request", "server.request",
                         "engine.query", "planner.execute")
        }
        assert (indent["client.request"] < indent["server.request"]
                < indent["engine.query"] < indent["planner.execute"])

    def test_unknown_trace_renders_a_clear_message(self):
        text = render_trace({"client": []}, "deadbeef")
        assert "no spans found" in text


class TestTraceCli:
    def test_from_json_rendering(self, stack, client, tmp_path, capsys):
        from repro.__main__ import main

        server, _ = stack
        client.query([("t", (0, 0, 8, 8), (16, 16, 8, 8))])
        trace_id = client.last_trace_id
        dump = tmp_path / "client.json"
        dump.write_text(json.dumps(client.tracer.timeline()))

        host, port = server.address
        exit_code = main([
            "trace", trace_id, "--from-json", str(dump),
            "--host", host, "--port", str(port),
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert f"trace {trace_id}" in out
        assert "client.request" in out and "[client]" in out
        assert "server.request" in out and "[server]" in out

    def test_no_server_requires_a_source(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="nothing to render"):
            main(["trace", "deadbeef", "--no-server"])

    def test_bad_span_dump_is_rejected(self, tmp_path):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a list"}')
        with pytest.raises(SystemExit, match="not a JSON array"):
            main(["trace", "deadbeef", "--no-server",
                  "--from-json", str(bad)])
