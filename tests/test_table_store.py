"""Tests for repro.table.store: the chunked flat-file store."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, StoreError
from repro.table import TableStore, TileSpec, read_table, write_table


def random_table(shape, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape).astype(dtype)


@pytest.fixture(scope="module")
def shared_store(tmp_path_factory):
    """A store written once and reused by the hypothesis property test."""
    path = tmp_path_factory.mktemp("store") / "prop.rtbl"
    values = random_table((39, 39), seed=9)
    write_table(path, values, chunk_shape=(7, 11))
    with TableStore(path) as store:
        yield store, values


class TestRoundTrip:
    def test_full_round_trip(self, tmp_path):
        path = tmp_path / "t.rtbl"
        values = random_table((37, 53), seed=1)
        write_table(path, values, chunk_shape=(8, 8))
        np.testing.assert_array_equal(read_table(path), values)

    def test_exact_chunk_multiple(self, tmp_path):
        path = tmp_path / "t.rtbl"
        values = random_table((16, 32), seed=2)
        write_table(path, values, chunk_shape=(8, 16))
        np.testing.assert_array_equal(read_table(path), values)

    def test_single_chunk(self, tmp_path):
        path = tmp_path / "t.rtbl"
        values = random_table((5, 5), seed=3)
        write_table(path, values, chunk_shape=(64, 64))
        np.testing.assert_array_equal(read_table(path), values)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32, np.int64])
    def test_dtypes_preserved(self, tmp_path, dtype):
        path = tmp_path / "t.rtbl"
        values = (random_table((10, 10), seed=4) * 100).astype(dtype)
        write_table(path, values)
        with TableStore(path) as store:
            assert store.dtype == np.dtype(dtype)
            np.testing.assert_array_equal(store.read_all(), values)


class TestTileReads:
    def test_tile_spanning_chunks(self, tmp_path):
        path = tmp_path / "t.rtbl"
        values = random_table((40, 40), seed=5)
        write_table(path, values, chunk_shape=(16, 16))
        with TableStore(path) as store:
            spec = TileSpec(10, 12, 20, 20)
            np.testing.assert_array_equal(store.read_tile(spec), values[spec.slices])

    def test_tile_within_one_chunk(self, tmp_path):
        path = tmp_path / "t.rtbl"
        values = random_table((32, 32), seed=6)
        write_table(path, values, chunk_shape=(16, 16))
        with TableStore(path) as store:
            store.chunks_touched = 0
            spec = TileSpec(1, 1, 4, 4)
            np.testing.assert_array_equal(store.read_tile(spec), values[spec.slices])
            assert store.chunks_touched == 1

    def test_chunks_touched_counts(self, tmp_path):
        path = tmp_path / "t.rtbl"
        values = random_table((32, 32), seed=7)
        write_table(path, values, chunk_shape=(16, 16))
        with TableStore(path) as store:
            store.chunks_touched = 0
            store.read_tile(TileSpec(8, 8, 16, 16))  # straddles all 4 chunks
            assert store.chunks_touched == 4

    def test_out_of_bounds_tile(self, tmp_path):
        path = tmp_path / "t.rtbl"
        write_table(path, random_table((8, 8), seed=8))
        with TableStore(path) as store:
            with pytest.raises(Exception):
                store.read_tile(TileSpec(5, 5, 8, 8))

    @given(
        row=st.integers(min_value=0, max_value=25),
        col=st.integers(min_value=0, max_value=25),
        height=st.integers(min_value=1, max_value=14),
        width=st.integers(min_value=1, max_value=14),
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_tiles_match_memory(self, shared_store, row, col, height, width):
        store, values = shared_store
        spec = TileSpec(row, col, height, width)
        if not spec.fits_in((39, 39)):
            return
        np.testing.assert_array_equal(store.read_tile(spec), values[spec.slices])


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreError):
            TableStore(tmp_path / "nope.rtbl")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rtbl"
        path.write_bytes(b"NOTATABLE" + b"\0" * 100)
        with pytest.raises(StoreError):
            TableStore(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "t.rtbl"
        write_table(path, random_table((20, 20), seed=10))
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(StoreError):
            TableStore(path)

    def test_tiny_file(self, tmp_path):
        path = tmp_path / "tiny.rtbl"
        path.write_bytes(b"xx")
        with pytest.raises(StoreError):
            TableStore(path)

    def test_closed_store_rejects_reads(self, tmp_path):
        path = tmp_path / "t.rtbl"
        write_table(path, random_table((4, 4), seed=11))
        store = TableStore(path)
        store.close()
        with pytest.raises(StoreError):
            store.read_all()

    def test_write_rejects_bad_input(self, tmp_path):
        with pytest.raises(ParameterError):
            write_table(tmp_path / "x", np.zeros(5))
        with pytest.raises(ParameterError):
            write_table(tmp_path / "x", np.zeros((2, 2)), chunk_shape=(0, 4))


class TestChecksum:
    def test_clean_file_verifies(self, tmp_path):
        path = tmp_path / "t.rtbl"
        write_table(path, random_table((20, 20), seed=20))
        with TableStore(path) as store:
            store.verify()  # must not raise

    def test_flipped_payload_byte_detected(self, tmp_path):
        path = tmp_path / "t.rtbl"
        write_table(path, random_table((20, 20), seed=21))
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # corrupt a byte deep inside the payload
        path.write_bytes(bytes(data))
        with TableStore(path) as store:
            with pytest.raises(StoreError, match="checksum"):
                store.verify()

    @pytest.mark.parametrize("offset_from_end", [1, 100, 500])
    def test_corruption_anywhere_detected(self, tmp_path, offset_from_end):
        path = tmp_path / "t.rtbl"
        write_table(path, random_table((16, 16), seed=22), chunk_shape=(8, 8))
        data = bytearray(path.read_bytes())
        data[-offset_from_end] ^= 0x01
        path.write_bytes(bytes(data))
        with TableStore(path) as store:
            with pytest.raises(StoreError):
                store.verify()

    def test_verify_on_closed_store(self, tmp_path):
        path = tmp_path / "t.rtbl"
        write_table(path, random_table((4, 4), seed=23))
        store = TableStore(path)
        store.close()
        with pytest.raises(StoreError):
            store.verify()
