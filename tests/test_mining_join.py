"""Tests for repro.mining.join: sketch similarity joins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SketchGenerator, lp_distance
from repro.errors import ParameterError
from repro.mining import sketch_similarity_join


def two_sides(seed=0):
    """Left tiles 0/1/2 have near-twins at right 2/0/1; rest unrelated."""
    rng = np.random.default_rng(seed)
    left = [rng.normal(size=(6, 6)) * 0.2 + offset * 10 for offset in range(3)]
    left += [rng.normal(size=(6, 6)) + 100.0 for _ in range(3)]
    right = [
        left[1] + rng.normal(size=(6, 6)) * 0.01,
        left[2] + rng.normal(size=(6, 6)) * 0.01,
        left[0] + rng.normal(size=(6, 6)) * 0.01,
    ]
    right += [rng.normal(size=(6, 6)) - 100.0 for _ in range(2)]
    return left, right


class TestTopPairsJoin:
    def test_finds_planted_twins(self):
        left, right = two_sides()
        gen = SketchGenerator(p=1.0, k=128, seed=1)
        pairs = sketch_similarity_join(left, right, gen, n_pairs=3)
        matches = {(pair.left, pair.right) for pair in pairs}
        assert matches == {(1, 0), (2, 1), (0, 2)}

    def test_sorted_by_distance(self):
        left, right = two_sides(seed=1)
        gen = SketchGenerator(p=1.0, k=64, seed=2)
        pairs = sketch_similarity_join(left, right, gen, n_pairs=10)
        distances = [pair.distance for pair in pairs]
        assert distances == sorted(distances)

    def test_estimates_track_exact(self):
        left, right = two_sides(seed=2)
        gen = SketchGenerator(p=1.0, k=256, seed=3)
        pairs = sketch_similarity_join(left, right, gen, n_pairs=4)
        for pair in pairs:
            exact = lp_distance(left[pair.left], right[pair.right], 1.0)
            if exact > 0:
                assert abs(pair.distance - exact) / exact < 0.5


class TestThresholdJoin:
    def test_threshold_keeps_only_close_pairs(self):
        left, right = two_sides(seed=3)
        gen = SketchGenerator(p=1.0, k=128, seed=4)
        pairs = sketch_similarity_join(left, right, gen, threshold=5.0)
        assert len(pairs) == 3
        assert all(pair.distance <= 5.0 for pair in pairs)

    def test_huge_threshold_returns_everything(self):
        left, right = two_sides(seed=4)
        gen = SketchGenerator(p=1.0, k=32, seed=5)
        pairs = sketch_similarity_join(left, right, gen, threshold=1e12)
        assert len(pairs) == len(left) * len(right)

    def test_blocking_equivalence(self):
        left, right = two_sides(seed=5)
        gen = SketchGenerator(p=1.0, k=64, seed=6)
        small_blocks = sketch_similarity_join(
            left, right, gen, threshold=1e12, block_size=2
        )
        one_block = sketch_similarity_join(
            left, right, gen, threshold=1e12, block_size=1000
        )
        assert [(p.left, p.right) for p in small_blocks] == [
            (p.left, p.right) for p in one_block
        ]

    def test_p2_path(self):
        left, right = two_sides(seed=6)
        gen = SketchGenerator(p=2.0, k=128, seed=7)
        pairs = sketch_similarity_join(left, right, gen, n_pairs=3)
        assert {(pair.left, pair.right) for pair in pairs} == {(1, 0), (2, 1), (0, 2)}


class TestValidation:
    def test_exactly_one_mode(self):
        left, right = two_sides()
        gen = SketchGenerator(p=1.0, k=8, seed=0)
        with pytest.raises(ParameterError):
            sketch_similarity_join(left, right, gen)
        with pytest.raises(ParameterError):
            sketch_similarity_join(left, right, gen, threshold=1.0, n_pairs=2)

    def test_bad_values(self):
        left, right = two_sides()
        gen = SketchGenerator(p=1.0, k=8, seed=0)
        with pytest.raises(ParameterError):
            sketch_similarity_join(left, right, gen, threshold=-1.0)
        with pytest.raises(ParameterError):
            sketch_similarity_join(left, right, gen, n_pairs=0)
        with pytest.raises(ParameterError):
            sketch_similarity_join(left, right, gen, n_pairs=1, block_size=0)

    def test_empty_side_rejected(self):
        gen = SketchGenerator(p=1.0, k=8, seed=0)
        with pytest.raises(ParameterError):
            sketch_similarity_join([], [np.ones((2, 2))], gen, n_pairs=1)
