"""Tests for repro.stable.theory: numeric SaS density/CDF/quantile."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.stable.scale import stable_median_scale
from repro.stable.theory import sas_cdf, sas_pdf, sas_quantile


def normal_cdf(x, sigma):
    return 0.5 * (1.0 + math.erf(x / (sigma * math.sqrt(2.0))))


class TestClosedFormAnchors:
    """alpha = 1 (Cauchy) and alpha = 2 (N(0, 2)) have exact formulas."""

    @pytest.mark.parametrize("x", [-3.0, -1.0, -0.2, 0.5, 2.0, 8.0])
    def test_cauchy_cdf(self, x):
        expected = 0.5 + math.atan(x) / math.pi
        assert sas_cdf(x, 1.0) == pytest.approx(expected, abs=1e-6)

    @pytest.mark.parametrize("x", [-2.0, 0.0, 0.7, 3.0])
    def test_gaussian_cdf(self, x):
        expected = normal_cdf(x, math.sqrt(2.0))
        assert sas_cdf(x, 2.0) == pytest.approx(expected, abs=1e-6)

    @pytest.mark.parametrize("x", [-1.5, 0.0, 0.5, 2.5])
    def test_cauchy_pdf(self, x):
        expected = 1.0 / (math.pi * (1.0 + x * x))
        assert sas_pdf(x, 1.0) == pytest.approx(expected, abs=1e-6)

    @pytest.mark.parametrize("x", [-1.0, 0.0, 1.3])
    def test_gaussian_pdf(self, x):
        sigma2 = 2.0
        expected = math.exp(-x * x / (2 * sigma2)) / math.sqrt(2 * math.pi * sigma2)
        assert sas_pdf(x, 2.0) == pytest.approx(expected, abs=1e-6)


class TestGeneralProperties:
    @pytest.mark.parametrize("alpha", [0.5, 0.8, 1.3, 1.7])
    def test_cdf_monotone(self, alpha):
        xs = [-5.0, -1.0, 0.0, 0.5, 2.0, 10.0]
        values = [sas_cdf(x, alpha) for x in xs]
        assert all(a < b for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 1.5, 2.0])
    def test_symmetry(self, alpha):
        for x in (0.3, 1.0, 4.0):
            assert sas_cdf(-x, alpha) == pytest.approx(1.0 - sas_cdf(x, alpha), abs=1e-6)

    def test_cdf_at_zero_is_half(self):
        assert sas_cdf(0.0, 0.7) == 0.5

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 1.5])
    def test_pdf_is_cdf_derivative(self, alpha):
        x, h = 0.8, 1e-4
        numeric = (sas_cdf(x + h, alpha) - sas_cdf(x - h, alpha)) / (2 * h)
        assert sas_pdf(x, alpha) == pytest.approx(numeric, rel=1e-3)

    def test_heavier_tail_for_smaller_alpha(self):
        # P(X > 5) grows as alpha shrinks.
        assert (1 - sas_cdf(5.0, 0.5)) > (1 - sas_cdf(5.0, 1.0)) > (1 - sas_cdf(5.0, 2.0))


class TestQuantile:
    def test_median_is_zero(self):
        assert sas_quantile(0.5, 1.2) == 0.0

    def test_cauchy_quartile(self):
        assert sas_quantile(0.75, 1.0) == pytest.approx(1.0, abs=1e-4)

    def test_round_trip(self):
        for alpha, q in [(0.8, 0.9), (1.5, 0.25), (2.0, 0.75)]:
            x = sas_quantile(q, alpha)
            assert sas_cdf(x, alpha) == pytest.approx(q, abs=1e-5)

    @pytest.mark.parametrize("p", [0.5, 0.8, 1.0, 1.5, 2.0])
    def test_agrees_with_monte_carlo_b_of_p(self, p):
        """The 0.75 quantile from Fourier inversion must match the Monte
        Carlo B(p) — two fully independent computations."""
        analytic = sas_quantile(0.75, p)
        monte_carlo = stable_median_scale(p)
        assert abs(analytic - monte_carlo) / monte_carlo < 0.01


class TestValidation:
    def test_bad_alpha(self):
        with pytest.raises(ParameterError):
            sas_cdf(1.0, 0.0)
        with pytest.raises(ParameterError):
            sas_pdf(1.0, 2.5)

    def test_bad_q(self):
        with pytest.raises(ParameterError):
            sas_quantile(0.0, 1.0)
        with pytest.raises(ParameterError):
            sas_quantile(1.0, 1.0)
