"""Tests for repro.metrics.confusion and repro.metrics.quality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExactLpOracle
from repro.errors import ParameterError
from repro.metrics import (
    clustering_quality,
    clustering_spread,
    confusion_matrix,
    confusion_matrix_agreement,
)


class TestConfusionMatrix:
    def test_identity(self):
        labels = [0, 0, 1, 1, 2]
        matrix = confusion_matrix(labels, labels)
        np.testing.assert_array_equal(matrix, np.diag([2, 2, 1]))

    def test_counts(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_noise_excluded(self):
        matrix = confusion_matrix([0, -1, 1], [0, 0, 1])
        np.testing.assert_array_equal(matrix, [[1, 0], [0, 1]])

    def test_all_noise_rejected(self):
        with pytest.raises(ParameterError):
            confusion_matrix([-1, -1], [0, 1])

    def test_explicit_n_clusters(self):
        matrix = confusion_matrix([0, 0], [0, 0], n_clusters=3)
        assert matrix.shape == (3, 3)


class TestAgreement:
    def test_identical_clusterings(self):
        assert confusion_matrix_agreement([0, 1, 1, 2], [0, 1, 1, 2]) == 1.0

    def test_permuted_labels_still_perfect(self):
        # Same partition, renamed clusters: agreement must be 1.
        assert confusion_matrix_agreement([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_partial_agreement(self):
        # One of four items moves cluster.
        assert confusion_matrix_agreement([0, 0, 1, 1], [0, 0, 1, 0]) == 0.75

    def test_independent_clusterings_low(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, size=500)
        b = rng.integers(0, 5, size=500)
        agreement = confusion_matrix_agreement(a, b)
        assert agreement < 0.4  # ~1/5 expected, plus matching slack


class TestSpreadAndQuality:
    def make_space(self):
        rng = np.random.default_rng(1)
        tiles = [rng.normal(size=(3, 3)) + blob * 10 for blob in range(2) for _ in range(5)]
        return ExactLpOracle(tiles, p=2.0)

    def test_good_partition_has_smaller_spread(self):
        space = self.make_space()
        good = np.array([0] * 5 + [1] * 5)
        bad = np.array([0, 1] * 5)
        assert clustering_spread(space, good) < clustering_spread(space, bad)

    def test_quality_of_identical_partitions_is_one(self):
        space = self.make_space()
        labels = np.array([0] * 5 + [1] * 5)
        assert clustering_quality(space, labels, labels) == pytest.approx(1.0)

    def test_quality_above_one_when_sketch_partition_better(self):
        space = self.make_space()
        good = np.array([0] * 5 + [1] * 5)
        bad = np.array([0, 1] * 5)
        assert clustering_quality(space, exact_labels=bad, sketch_labels=good) > 1.0

    def test_quality_below_one_when_sketch_partition_worse(self):
        space = self.make_space()
        good = np.array([0] * 5 + [1] * 5)
        bad = np.array([0, 1] * 5)
        assert clustering_quality(space, exact_labels=good, sketch_labels=bad) < 1.0

    def test_noise_ignored_in_spread(self):
        space = self.make_space()
        labels = np.array([0] * 5 + [-1] * 5)
        spread = clustering_spread(space, labels)
        assert np.isfinite(spread)

    def test_label_count_mismatch(self):
        with pytest.raises(ParameterError):
            clustering_spread(self.make_space(), np.zeros(3, dtype=int))

    def test_singleton_clusters_zero_spread(self):
        space = self.make_space()
        labels = np.arange(10)
        assert clustering_spread(space, labels) == 0.0
