"""Tests for repro.table.tiles: TileSpec and TileGrid."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, ShapeError
from repro.table import TileGrid, TileSpec


class TestTileSpec:
    def test_basic_properties(self):
        spec = TileSpec(2, 3, 4, 5)
        assert spec.shape == (4, 5)
        assert spec.size == 20
        assert spec.end_row == 6
        assert spec.end_col == 8

    def test_slices_select_expected_region(self):
        arr = np.arange(100).reshape(10, 10)
        spec = TileSpec(1, 2, 3, 4)
        np.testing.assert_array_equal(arr[spec.slices], arr[1:4, 2:6])

    def test_fits_in(self):
        assert TileSpec(0, 0, 5, 5).fits_in((5, 5))
        assert not TileSpec(1, 0, 5, 5).fits_in((5, 5))
        assert not TileSpec(0, 1, 5, 5).fits_in((5, 5))

    def test_require_fits_raises(self):
        with pytest.raises(ShapeError):
            TileSpec(0, 0, 6, 5).require_fits((5, 5))

    def test_negative_anchor_rejected(self):
        with pytest.raises(ParameterError):
            TileSpec(-1, 0, 2, 2)

    def test_zero_size_rejected(self):
        with pytest.raises(ParameterError):
            TileSpec(0, 0, 0, 2)
        with pytest.raises(ParameterError):
            TileSpec(0, 0, 2, 0)

    def test_shifted(self):
        spec = TileSpec(1, 1, 2, 2).shifted(3, 4)
        assert (spec.row, spec.col) == (4, 5)
        assert spec.shape == (2, 2)

    def test_frozen_and_hashable(self):
        spec = TileSpec(0, 0, 1, 1)
        assert spec in {spec}
        with pytest.raises(AttributeError):
            spec.row = 5


class TestTileGrid:
    def test_exact_tiling(self):
        grid = TileGrid((12, 8), (4, 2))
        assert grid.rows == 3
        assert grid.cols == 4
        assert len(grid) == 12

    def test_ragged_margin_ignored(self):
        grid = TileGrid((13, 9), (4, 2))
        assert grid.rows == 3
        assert grid.cols == 4

    def test_indexing_row_major(self):
        grid = TileGrid((8, 8), (4, 4))
        assert grid[0] == TileSpec(0, 0, 4, 4)
        assert grid[1] == TileSpec(0, 4, 4, 4)
        assert grid[2] == TileSpec(4, 0, 4, 4)
        assert grid[3] == TileSpec(4, 4, 4, 4)

    def test_negative_index(self):
        grid = TileGrid((8, 8), (4, 4))
        assert grid[-1] == grid[3]

    def test_out_of_range(self):
        grid = TileGrid((8, 8), (4, 4))
        with pytest.raises(IndexError):
            grid[4]
        with pytest.raises(IndexError):
            grid[-5]

    def test_iteration_covers_all_tiles(self):
        grid = TileGrid((6, 6), (2, 3))
        tiles = list(grid)
        assert len(tiles) == len(grid)
        covered = set()
        for spec in tiles:
            for r in range(spec.row, spec.end_row):
                for c in range(spec.col, spec.end_col):
                    assert (r, c) not in covered
                    covered.add((r, c))
        assert len(covered) == 36

    def test_index_of_round_trip(self):
        grid = TileGrid((10, 15), (2, 5))
        for index in range(len(grid)):
            assert grid.index_of(grid[index]) == index

    def test_index_of_rejects_misaligned(self):
        grid = TileGrid((10, 10), (5, 5))
        with pytest.raises(ParameterError):
            grid.index_of(TileSpec(1, 0, 5, 5))

    def test_index_of_rejects_wrong_shape(self):
        grid = TileGrid((10, 10), (5, 5))
        with pytest.raises(ShapeError):
            grid.index_of(TileSpec(0, 0, 2, 5))

    def test_tile_larger_than_table_rejected(self):
        with pytest.raises(ShapeError):
            TileGrid((4, 4), (5, 4))

    def test_grid_position(self):
        grid = TileGrid((8, 12), (4, 4))
        assert grid.grid_position(0) == (0, 0)
        assert grid.grid_position(4) == (1, 1)
        with pytest.raises(IndexError):
            grid.grid_position(6)

    @given(
        table_h=st.integers(min_value=1, max_value=40),
        table_w=st.integers(min_value=1, max_value=40),
        tile_h=st.integers(min_value=1, max_value=40),
        tile_w=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_all_grid_tiles_fit(self, table_h, table_w, tile_h, tile_w):
        if tile_h > table_h or tile_w > table_w:
            return
        grid = TileGrid((table_h, table_w), (tile_h, tile_w))
        for spec in grid:
            assert spec.fits_in((table_h, table_w))
