"""Tests for repro.core.sketch: the Sketch value type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sketch import Sketch, SketchKey, mean_sketch
from repro.errors import IncompatibleSketchError, ParameterError


def key(seed=0, p=1.0, k=4, structure=("direct", (2, 2), 0)):
    return SketchKey(seed=seed, p=p, k=k, structure=structure)


def sketch(values, **kwargs):
    values = np.asarray(values, dtype=float)
    return Sketch(values, key(k=values.size, **kwargs))


class TestConstruction:
    def test_basic(self):
        s = sketch([1.0, 2.0, 3.0])
        assert s.k == 3
        assert s.p == 1.0
        assert s.nbytes == 24

    def test_k_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            Sketch(np.zeros(3), key(k=4))

    def test_non_1d_rejected(self):
        with pytest.raises(ParameterError):
            Sketch(np.zeros((2, 2)), key(k=4))

    def test_values_cast_to_float64(self):
        s = sketch(np.array([1, 2], dtype=np.int32))
        assert s.values.dtype == np.float64


class TestArithmetic:
    def test_add(self):
        a, b = sketch([1.0, 2.0]), sketch([10.0, 20.0])
        np.testing.assert_array_equal((a + b).values, [11.0, 22.0])

    def test_sub(self):
        a, b = sketch([1.0, 2.0]), sketch([10.0, 20.0])
        np.testing.assert_array_equal((a - b).values, [-9.0, -18.0])

    def test_scalar_multiply(self):
        s = sketch([1.0, -2.0])
        np.testing.assert_array_equal((2.5 * s).values, [2.5, -5.0])
        np.testing.assert_array_equal((s * 2.5).values, [2.5, -5.0])

    def test_mismatched_keys_rejected(self):
        a = sketch([1.0, 2.0], seed=0)
        b = sketch([1.0, 2.0], seed=1)
        with pytest.raises(IncompatibleSketchError):
            a + b
        with pytest.raises(IncompatibleSketchError):
            a - b

    def test_mismatched_structure_rejected(self):
        a = sketch([1.0], structure=("direct", (1, 1), 0))
        b = sketch([1.0], structure=("direct", (1, 1), 1))
        with pytest.raises(IncompatibleSketchError):
            a + b


class TestMeanSketch:
    def test_mean(self):
        s = mean_sketch([sketch([0.0, 2.0]), sketch([4.0, 6.0])])
        np.testing.assert_array_equal(s.values, [2.0, 4.0])

    def test_single(self):
        s = mean_sketch([sketch([1.0, 1.0])])
        np.testing.assert_array_equal(s.values, [1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            mean_sketch([])

    def test_incompatible_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            mean_sketch([sketch([1.0], seed=0), sketch([1.0], seed=1)])

    def test_preserves_key(self):
        a, b = sketch([1.0, 2.0]), sketch([3.0, 4.0])
        assert mean_sketch([a, b]).key == a.key
