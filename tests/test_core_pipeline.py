"""Tests for repro.core.pipeline: bulk sketching via FFT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipelineStats, SketchGenerator, sketch_all_positions, sketch_grid
from repro.errors import ShapeError
from repro.fourier import SpectrumCache, cross_correlate2d_valid
from repro.table import TileGrid, TileSpec


def table(shape=(16, 20), seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestSketchAllPositions:
    def test_shape(self):
        gen = SketchGenerator(p=1.0, k=3, seed=0)
        out = sketch_all_positions(table(), (4, 5), gen)
        assert out.shape == (3, 13, 16)

    def test_matches_direct_sketch_every_position(self):
        data = table((10, 9), seed=1)
        gen = SketchGenerator(p=1.0, k=4, seed=5)
        out = sketch_all_positions(data, (3, 4), gen)
        for row in range(out.shape[1]):
            for col in range(out.shape[2]):
                window = data[row : row + 3, col : col + 4]
                expected = gen.sketch(window)
                np.testing.assert_allclose(out[:, row, col], expected.values, atol=1e-8)

    def test_streams_give_different_sketches(self):
        data = table((8, 8), seed=2)
        gen = SketchGenerator(p=1.0, k=2, seed=0)
        a = sketch_all_positions(data, (4, 4), gen, stream=0)
        b = sketch_all_positions(data, (4, 4), gen, stream=1)
        assert not np.allclose(a, b)

    def test_own_fft_backend_matches_numpy(self):
        data = table((12, 12), seed=3)
        gen = SketchGenerator(p=0.5, k=2, seed=1)
        np.testing.assert_allclose(
            sketch_all_positions(data, (4, 4), gen, backend="own"),
            sketch_all_positions(data, (4, 4), gen, backend="numpy"),
            atol=1e-6,
        )

    def test_float32_output(self):
        gen = SketchGenerator(p=1.0, k=2, seed=0)
        out = sketch_all_positions(table((8, 8)), (2, 2), gen, out_dtype=np.float32)
        assert out.dtype == np.float32

    def test_window_too_large(self):
        gen = SketchGenerator(p=1.0, k=2, seed=0)
        with pytest.raises(ShapeError):
            sketch_all_positions(table((4, 4)), (5, 2), gen)

    def test_non_2d_data(self):
        gen = SketchGenerator(p=1.0, k=2, seed=0)
        with pytest.raises(ShapeError):
            sketch_all_positions(np.zeros(8), (2, 2), gen)


class TestBatchedEngine:
    def legacy_sketch_all_positions(self, data, window, gen, stream=0):
        """The pre-batching reference: one cross-correlation per matrix."""
        out = []
        for matrix in gen.iter_matrices(window, stream):
            out.append(cross_correlate2d_valid(np.asarray(data, float), matrix))
        return np.stack(out)

    def test_matches_pre_change_path_tightly(self):
        """The batched engine must reproduce the per-kernel path to 1e-9
        relative tolerance in float64 (acceptance criterion)."""
        data = table((50, 70), seed=7)
        gen = SketchGenerator(p=1.0, k=6, seed=3)
        new = sketch_all_positions(data, (9, 13), gen)
        old = self.legacy_sketch_all_positions(data, (9, 13), gen)
        np.testing.assert_allclose(new, old, rtol=1e-9, atol=1e-9)

    def test_data_fft_computed_exactly_once_per_map(self):
        data = table((32, 32), seed=8)
        gen = SketchGenerator(p=1.0, k=5, seed=0)
        stats = PipelineStats()
        sketch_all_positions(data, (8, 8), gen, stats=stats)
        assert stats.data_ffts_computed == 1
        assert stats.data_ffts_reused == 0
        assert stats.kernel_ffts == gen.k
        assert stats.kernel_fft_batches >= 1
        assert stats.maps_built == 1
        assert stats.bytes_built > 0

    def test_shared_cache_reuses_data_fft_across_streams(self):
        data = table((32, 32), seed=9)
        gen = SketchGenerator(p=1.0, k=3, seed=0)
        stats = PipelineStats()
        cache = SpectrumCache(data)
        for stream in range(4):
            sketch_all_positions(
                data, (8, 8), gen, stream=stream, spectrum_cache=cache, stats=stats
            )
        assert stats.data_ffts_computed == 1
        assert stats.data_ffts_reused == 3
        assert stats.total_data_ffts == 4
        assert stats.maps_built == 4

    def test_own_backend_accounts_per_kernel(self):
        data = table((12, 12), seed=10)
        gen = SketchGenerator(p=1.0, k=2, seed=0)
        stats = PipelineStats()
        sketch_all_positions(data, (4, 4), gen, backend="own", stats=stats)
        assert stats.data_ffts_computed == gen.k
        assert stats.kernel_ffts == gen.k

    def test_stats_reset(self):
        stats = PipelineStats()
        stats.tally(data_ffts_computed=2, bytes_built=100)
        stats.reset()
        assert stats.data_ffts_computed == 0
        assert stats.bytes_built == 0
        assert stats.total_data_ffts == 0


class TestSketchGrid:
    def test_matches_individual_sketches(self):
        data = table((12, 15), seed=4)
        grid = TileGrid(data.shape, (4, 5))
        gen = SketchGenerator(p=1.0, k=6, seed=9)
        matrix = sketch_grid(data, grid, gen)
        assert matrix.shape == (len(grid), 6)
        for index, spec in enumerate(grid):
            expected = gen.sketch(data[spec.slices])
            np.testing.assert_allclose(matrix[index], expected.values, atol=1e-8)

    def test_matches_all_positions_subsampled(self):
        data = table((8, 8), seed=5)
        grid = TileGrid(data.shape, (4, 4))
        gen = SketchGenerator(p=2.0, k=3, seed=2)
        matrix = sketch_grid(data, grid, gen)
        maps = sketch_all_positions(data, (4, 4), gen)
        for index, spec in enumerate(grid):
            np.testing.assert_allclose(
                matrix[index], maps[:, spec.row, spec.col], atol=1e-8
            )

    def test_ragged_margin_ignored(self):
        data = table((9, 9), seed=6)
        grid = TileGrid(data.shape, (4, 4))
        matrix = sketch_grid(data, grid, SketchGenerator(p=1.0, k=2, seed=0))
        assert matrix.shape == (4, 2)

    def test_grid_table_mismatch(self):
        grid = TileGrid((8, 8), (4, 4))
        with pytest.raises(ShapeError):
            sketch_grid(table((10, 10)), grid, SketchGenerator(p=1.0, k=2))
