"""Tests for repro.core.invariance: normalised sketched comparisons."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SketchGenerator, lp_distance, lp_norm
from repro.core.invariance import AugmentedSketch, InvariantSketcher, estimate_norm
from repro.errors import ParameterError


def sketcher(p=1.0, k=256, seed=0):
    return InvariantSketcher(SketchGenerator(p=p, k=k, seed=seed))


def tile(seed, shape=(8, 8)):
    return np.random.default_rng(seed).normal(size=shape)


class TestEstimateNorm:
    @pytest.mark.parametrize("p", [0.5, 1.0, 2.0])
    def test_tracks_lp_norm(self, p):
        x = tile(0)
        gen = SketchGenerator(p=p, k=512, seed=1)
        exact = lp_norm(x, p)
        assert abs(estimate_norm(gen.sketch(x)) - exact) / exact < 0.3

    def test_zero_object(self):
        gen = SketchGenerator(p=1.0, k=16, seed=0)
        assert estimate_norm(gen.sketch(np.zeros((3, 3)))) == 0.0


class TestAugmentedSketch:
    def test_captures_sum_and_size(self):
        s = sketcher()
        augmented = s.sketch(np.full((4, 4), 2.5))
        assert augmented.total == pytest.approx(40.0)
        assert augmented.size == 16
        assert augmented.mean == pytest.approx(2.5)


class TestPlainMode:
    def test_matches_ordinary_estimate(self):
        s = sketcher()
        x, y = tile(1), tile(2)
        plain = s.distance(s.sketch(x), s.sketch(y), mode="plain")
        exact = lp_distance(x, y, 1.0)
        assert abs(plain - exact) / exact < 0.25


class TestShiftInvariance:
    def test_shifted_copies_are_identical(self):
        """x and x + c*ones must have shift-distance ~0 (exactly 0 in
        sketch space, by linearity)."""
        s = sketcher()
        x = tile(3)
        a = s.sketch(x)
        b = s.sketch(x + 17.0)
        assert s.distance(a, b, mode="shift") == pytest.approx(0.0, abs=1e-9)

    def test_plain_mode_sees_the_shift(self):
        s = sketcher()
        x = tile(3)
        a, b = s.sketch(x), s.sketch(x + 17.0)
        assert s.distance(a, b, mode="plain") > 100.0

    def test_shift_distance_tracks_centered_exact(self):
        s = sketcher()
        x, y = tile(4), tile(5) + 9.0
        approx = s.distance(s.sketch(x), s.sketch(y), mode="shift")
        exact = lp_distance(x - x.mean(), y - y.mean(), 1.0)
        assert abs(approx - exact) / exact < 0.25


class TestScaleInvariance:
    def test_scaled_copies_are_identical(self):
        s = sketcher()
        x = tile(6)
        a = s.sketch(x)
        b = s.sketch(5.0 * x)
        assert s.distance(a, b, mode="scale") == pytest.approx(0.0, abs=1e-9)

    def test_plain_mode_sees_the_scale(self):
        s = sketcher()
        x = tile(6)
        assert s.distance(s.sketch(x), s.sketch(5.0 * x), mode="plain") > 1.0

    def test_zero_object_rejected(self):
        s = sketcher()
        a = s.sketch(np.zeros((4, 4)))
        b = s.sketch(tile(7, (4, 4)))
        with pytest.raises(ParameterError):
            s.distance(a, b, mode="scale")


class TestShiftScale:
    def test_affine_copies_are_identical(self):
        """x and a*x + b*ones coincide after shift-then-scale."""
        s = sketcher()
        x = tile(8)
        a = s.sketch(x)
        b = s.sketch(3.0 * x + 11.0)
        assert s.distance(a, b, mode="shift-scale") == pytest.approx(0.0, abs=1e-9)

    def test_different_shapes_still_differ(self):
        s = sketcher()
        x, y = tile(9), tile(10)
        d = s.distance(s.sketch(x), s.sketch(3 * y + 1), mode="shift-scale")
        assert d > 0.1


class TestValidation:
    def test_unknown_mode(self):
        s = sketcher()
        a = s.sketch(tile(11))
        with pytest.raises(ParameterError):
            s.distance(a, a, mode="affine")

    def test_ones_sketch_cached(self):
        s = sketcher(k=16)
        x = tile(12)
        s.distance(s.sketch(x), s.sketch(x), mode="shift")
        generated = s.generator.matrices_generated
        s.distance(s.sketch(x), s.sketch(x), mode="shift")
        # The second call reuses both the ones-sketch and the matrix cache.
        assert s.generator.matrices_generated == generated
