"""Tests for the from-scratch Hungarian algorithm."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.metrics import linear_sum_assignment


def brute_force_min(cost: np.ndarray) -> float:
    n_rows, n_cols = cost.shape
    best = np.inf
    for perm in itertools.permutations(range(n_cols), n_rows):
        best = min(best, sum(cost[i, j] for i, j in enumerate(perm)))
    return best


def assignment_total(cost: np.ndarray, maximize=False) -> float:
    rows, cols = linear_sum_assignment(cost, maximize=maximize)
    return float(cost[rows, cols].sum())


class TestSquare:
    def test_identity_best(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        rows, cols = linear_sum_assignment(cost)
        np.testing.assert_array_equal(cols[rows], [0, 1])

    def test_antidiagonal_best(self):
        cost = np.array([[1.0, 0.0], [0.0, 1.0]])
        rows, cols = linear_sum_assignment(cost)
        np.testing.assert_array_equal(cols, [1, 0])

    def test_matches_brute_force_small(self):
        rng = np.random.default_rng(0)
        for trial in range(30):
            cost = rng.uniform(0, 10, size=(4, 4))
            assert assignment_total(cost) == pytest.approx(brute_force_min(cost))

    def test_maximize(self):
        rng = np.random.default_rng(1)
        for trial in range(20):
            value = rng.uniform(0, 10, size=(3, 3))
            assert assignment_total(value, maximize=True) == pytest.approx(
                -brute_force_min(-value)
            )

    def test_negative_costs(self):
        cost = np.array([[-5.0, 1.0], [2.0, -3.0]])
        assert assignment_total(cost) == pytest.approx(-8.0)

    def test_one_by_one(self):
        rows, cols = linear_sum_assignment(np.array([[7.0]]))
        assert rows.tolist() == [0]
        assert cols.tolist() == [0]


class TestRectangular:
    def test_more_cols_than_rows(self):
        cost = np.array([[9.0, 1.0, 9.0], [9.0, 9.0, 2.0]])
        rows, cols = linear_sum_assignment(cost)
        assert cols.tolist() == [1, 2]

    def test_matches_brute_force_rectangular(self):
        rng = np.random.default_rng(2)
        for trial in range(20):
            cost = rng.uniform(0, 10, size=(3, 5))
            assert assignment_total(cost) == pytest.approx(brute_force_min(cost))

    def test_rows_exceed_cols_rejected(self):
        with pytest.raises(ParameterError):
            linear_sum_assignment(np.zeros((3, 2)))


class TestValidation:
    def test_empty(self):
        with pytest.raises(ParameterError):
            linear_sum_assignment(np.zeros((0, 0)))

    def test_non_finite(self):
        with pytest.raises(ParameterError):
            linear_sum_assignment(np.array([[np.inf, 1.0], [1.0, 2.0]]))

    def test_1d(self):
        with pytest.raises(ParameterError):
            linear_sum_assignment(np.zeros(4))

    def test_assignment_is_permutation(self):
        rng = np.random.default_rng(3)
        cost = rng.uniform(size=(6, 6))
        rows, cols = linear_sum_assignment(cost)
        assert sorted(rows.tolist()) == list(range(6))
        assert sorted(cols.tolist()) == sorted(set(cols.tolist()))


class TestHypothesis:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=5),
        m=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_optimality_property(self, seed, n, m):
        if n > m:
            return
        cost = np.random.default_rng(seed).uniform(-5, 5, size=(n, m))
        assert assignment_total(cost) == pytest.approx(brute_force_min(cost))
