"""Per-query cost provenance: CostLedger, engine.explain, wire + router.

The load-bearing property: the decomposition an ``explain`` response
reports must be **bit-identical** to the plan the executor actually ran
— same groups, same strategies, same dyadic size keys, same member
indices — no matter which seam the request entered through (in-process
engine, JSON wire, binary wire, or the shard router's scatter).  The
hypothesis test at the bottom pins exactly that against an
independently computed :meth:`QueryPlanner.plan`.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.obs.explain import (
    CostLedger,
    active_ledger,
    guarantee_band,
    ledger_scope,
    render_explain,
)
from repro.obs.quality import theoretical_epsilon
from repro.serve import Client, SketchEngine, SketchServer
from repro.shard.router import ShardRouter, ShardSpec

# Queries covering grid / compound / disjoint / auto over two tables.
EXPLAIN_QUERIES = [
    ("t", (0, 0, 8, 8), (8, 64, 8, 8), "grid"),
    ("t", (0, 0, 12, 20), (16, 40, 12, 20), "compound"),
    ("t", (8, 0, 16, 16), (32, 64, 16, 16), "disjoint"),
    ("t", (0, 16, 8, 16), (40, 48, 8, 16)),
    ("u", (0, 0, 8, 8), (16, 16, 8, 8), "grid"),
    ("u", (4, 4, 8, 8), (24, 24, 8, 8), "disjoint"),
    ("u", (0, 0, 16, 16), (32, 32, 16, 16)),
]


def _make_engine() -> SketchEngine:
    engine = SketchEngine(p=1.0, k=16, seed=2)
    engine.register_array("t", np.random.default_rng(8).normal(size=(64, 96)))
    engine.register_array("u", np.random.default_rng(9).normal(size=(64, 64)))
    return engine


@pytest.fixture(scope="module")
def engine():
    return _make_engine()


@pytest.fixture(scope="module")
def server(engine):
    with SketchServer(engine, port=0) as srv:
        srv.start()
        yield srv


class TestCostLedger:
    def test_scope_installs_and_restores(self):
        assert active_ledger() is None
        outer, inner = CostLedger(), CostLedger()
        with ledger_scope(outer):
            assert active_ledger() is outer
            with ledger_scope(inner):
                assert active_ledger() is inner
            assert active_ledger() is outer
        assert active_ledger() is None

    def test_scope_restores_on_raise(self):
        with pytest.raises(RuntimeError):
            with ledger_scope(CostLedger()):
                raise RuntimeError("boom")
        assert active_ledger() is None

    def test_scope_is_thread_local(self):
        seen = []
        with ledger_scope(CostLedger()):
            thread = threading.Thread(
                target=lambda: seen.append(active_ledger())
            )
            thread.start()
            thread.join(5.0)
        assert seen == [None]

    def test_stage_timings_use_injected_clock(self):
        ticks = iter([1.0, 3.5])
        ledger = CostLedger(clock=lambda: next(ticks))
        with ledger.stage("work"):
            pass
        assert ledger.as_dict()["stages"] == [
            {"name": "work", "seconds": 2.5}
        ]

    def test_map_outcomes_are_counted(self):
        ledger = CostLedger()
        for outcome in ("built", "hit", "hit", "waited"):
            ledger.record_map(
                table="t", row_exp=3, col_exp=3, stream=0,
                outcome=outcome, seconds=0.0, dtype="float32", nbytes=1,
            )
        assert ledger.as_dict()["map_outcomes"] == {
            "built": 1, "hit": 2, "waited": 1
        }


class TestGuaranteeBand:
    def test_exact_strategies_get_theorem_2_band(self):
        for strategy in ("grid", "disjoint"):
            band = guarantee_band(strategy, 64)
            eps = theoretical_epsilon(64, 0.05)
            assert band["epsilon"] == pytest.approx(eps)
            assert band["band"] == pytest.approx([1 - eps, 1 + eps])
            assert band["exact_sketch"] is True

    def test_compound_band_carries_theorem_5_factor(self):
        band = guarantee_band("compound", 64)
        eps = theoretical_epsilon(64, 0.05)
        assert band["band"] == pytest.approx([1 - eps, 4 * (1 + eps)])
        assert band["exact_sketch"] is False


class TestEngineExplain:
    def test_results_match_query_bit_identically(self, engine):
        explained = engine.explain(EXPLAIN_QUERIES)
        queried = engine.query(EXPLAIN_QUERIES)
        assert [r.distance for r in explained["results"]] == [
            r.distance for r in queried
        ]
        assert [r.strategy for r in explained["results"]] == [
            r.strategy for r in queried
        ]

    def test_repeat_explain_flips_built_to_hit(self):
        engine = _make_engine()
        first = engine.explain(EXPLAIN_QUERIES)["explain"]
        assert first["map_outcomes"].get("built", 0) > 0
        second = engine.explain(EXPLAIN_QUERIES)["explain"]
        assert second["map_outcomes"] == {
            "hit": sum(first["map_outcomes"].values())
        }

    def test_groups_cover_every_query_exactly_once(self, engine):
        section = engine.explain(EXPLAIN_QUERIES)["explain"]
        indices = sorted(
            index for group in section["groups"] for index in group["indices"]
        )
        assert indices == list(range(len(EXPLAIN_QUERIES)))

    def test_stage_timings_include_parse_plan_and_groups(self, engine):
        section = engine.explain(EXPLAIN_QUERIES)["explain"]
        names = [stage["name"] for stage in section["stages"]]
        assert "parse" in names and "planner.plan" in names
        assert "execute" in names
        group_stages = [n for n in names if n.startswith("planner.group[")]
        assert len(group_stages) == len(section["groups"])

    def test_explain_inside_a_trace_carries_spans(self, engine):
        with engine.tracer.trace("explain-trace"):
            section = engine.explain(EXPLAIN_QUERIES[:1])["explain"]
        assert section["trace_id"] == "explain-trace"
        span_names = {span["name"] for span in section["spans"]}
        assert "engine.explain" in span_names

    def test_empty_batch_raises_and_is_accounted(self, engine):
        before = engine.stats.errors.get("explain", 0)
        with pytest.raises(ParameterError):
            engine.explain([])
        assert engine.stats.errors.get("explain", 0) == before + 1

    def test_explain_accounts_as_its_own_op(self):
        engine = _make_engine()
        engine.explain(EXPLAIN_QUERIES[:1])
        assert engine.stats.requests.get("explain") == 1


class TestWireExplain:
    @pytest.mark.parametrize("protocol", ["json", "binary"])
    def test_remote_explain_matches_in_process(self, server, protocol):
        local = _make_engine()
        expected = local.explain(EXPLAIN_QUERIES)
        with Client(*server.address, protocol=protocol) as client:
            remote = client.explain(EXPLAIN_QUERIES)
        assert [r.distance for r in remote["results"]] == [
            r.distance for r in expected["results"]
        ]
        strip = ("maps", "map_outcomes", "stages", "trace_id", "spans")
        remote_groups = remote["explain"]["groups"]
        expected_groups = expected["explain"]["groups"]
        assert remote_groups == expected_groups
        for key in strip:
            assert key in remote["explain"] or key in ("trace_id", "spans")

    def test_remote_explain_carries_the_client_trace(self, server):
        with Client(*server.address) as client:
            payload = client.explain(EXPLAIN_QUERIES[:1])
            assert payload["explain"]["trace_id"] == client.last_trace_id

    def test_render_explain_handles_both_shapes(self, server):
        with Client(*server.address) as client:
            payload = client.explain(EXPLAIN_QUERIES[:2])
        text = render_explain(payload)
        assert "query[0]" in text and "group " in text and "stage " in text
        sharded = {
            "results": payload["results"],
            "explain": {"shards": {
                "s0": dict(payload["explain"], batch_indices=[0, 1]),
            }},
        }
        text = render_explain(sharded)
        assert "shard s0:" in text and "batch_indices=[0, 1]" in text


@pytest.fixture(scope="module")
def fleet():
    """Two single-process servers behind a router, tables pinned."""
    servers = []
    specs = []
    for index in range(2):
        engine = _make_engine()
        srv = SketchServer(engine, port=0)
        srv.start()
        servers.append(srv)
        specs.append(ShardSpec(f"s{index}", *srv.address))
    router = ShardRouter(specs, overrides={"t": "s0", "u": "s1"})
    try:
        yield router
    finally:
        router.close()
        for srv in servers:
            srv.stop()


class TestRouterExplain:
    def test_sections_stay_per_shard_with_batch_indices(self, fleet):
        payload = fleet.explain(EXPLAIN_QUERIES)
        shards = payload["explain"]["shards"]
        assert set(shards) == {"s0", "s1"}
        t_indices = [i for i, q in enumerate(EXPLAIN_QUERIES) if q[0] == "t"]
        u_indices = [i for i, q in enumerate(EXPLAIN_QUERIES) if q[0] == "u"]
        assert shards["s0"]["batch_indices"] == t_indices
        assert shards["s1"]["batch_indices"] == u_indices
        assert shards["s0"]["shard"] == "s0"
        # Every group inside a shard section names only that shard's table.
        assert all(g["table"] == "t" for g in shards["s0"]["groups"])
        assert all(g["table"] == "u" for g in shards["s1"]["groups"])

    def test_results_merge_in_submission_order(self, fleet):
        payload = fleet.explain(EXPLAIN_QUERIES)
        local = _make_engine()
        expected = local.query(EXPLAIN_QUERIES)
        assert [r.distance for r in payload["results"]] == [
            r.distance for r in expected
        ]

    def test_single_shard_batch_skips_fanout_threads(self, fleet):
        only_t = [q for q in EXPLAIN_QUERIES if q[0] == "t"]
        payload = fleet.explain(only_t)
        assert set(payload["explain"]["shards"]) == {"s0"}

    def test_explain_accounts_on_the_router(self, fleet):
        before = fleet.stats.requests.get("explain", 0)
        fleet.explain(EXPLAIN_QUERIES[:1])
        assert fleet.stats.requests.get("explain", 0) == before + 1


# ---------------------------------------------------------------------------
# The property: explained decomposition == executed plan, on every seam
# ---------------------------------------------------------------------------

batches = st.lists(
    st.sampled_from(EXPLAIN_QUERIES), min_size=1, max_size=6
)


def _plan_key(groups):
    """Canonical, order-independent form of a decomposition."""
    return sorted(
        (g["table"], g["strategy"], tuple(g["size_key"]), tuple(g["indices"]))
        for g in groups
    )


def _expected_plan(engine, batch):
    from repro.serve.planner import RectQuery

    parsed = [RectQuery.parse(query) for query in batch]
    return sorted(
        (g.table, g.strategy, tuple(g.size_key), tuple(g.indices))
        for g in engine.planner.plan(parsed)
    )


class TestExplainPlanProperty:
    @given(batch=batches)
    @settings(max_examples=25, deadline=None)
    def test_engine_explain_reports_the_executed_plan(self, engine, batch):
        section = engine.explain(batch)["explain"]
        assert _plan_key(section["groups"]) == _expected_plan(engine, batch)

    @given(batch=batches, protocol=st.sampled_from(["json", "binary"]))
    @settings(max_examples=15, deadline=None)
    def test_wire_explain_reports_the_executed_plan(
        self, engine, server, batch, protocol
    ):
        with Client(*server.address, protocol=protocol) as client:
            section = client.explain(batch)["explain"]
        assert _plan_key(section["groups"]) == _expected_plan(engine, batch)

    @given(batch=batches)
    @settings(max_examples=10, deadline=None)
    def test_router_explain_reports_per_shard_executed_plans(
        self, engine, fleet, batch
    ):
        payload = fleet.explain(batch)
        merged = []
        for name, section in payload["explain"]["shards"].items():
            owner = {"t": "s0", "u": "s1"}
            indices = section["batch_indices"]
            for group in section["groups"]:
                assert owner[group["table"]] == name
                # Shard-local indices map back through batch_indices.
                merged.append((
                    group["table"], group["strategy"],
                    tuple(group["size_key"]),
                    tuple(indices[i] for i in group["indices"]),
                ))
        assert sorted(merged) == _expected_plan(engine, batch)
