"""Quality gate: every public item in the package carries a docstring.

Walks every module under ``repro`` and asserts that each module, public
class, public function and public method defined there documents itself
— deliverable (e)'s "doc comments on every public item", enforced.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


MODULES = _all_modules()


def _is_public(name: str) -> bool:
    return not name.startswith("_")


@pytest.mark.parametrize("module_name", MODULES)
def test_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, item in vars(module).items():
        if not _is_public(name):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module_name:
            continue  # re-exports are documented at their definition site
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if not _is_public(method_name):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"undocumented public items in {module_name}: {undocumented}"
    )
