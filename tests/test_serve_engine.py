"""Tests for the multi-table sketch query engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generator import SketchGenerator
from repro.core.io import save_pool
from repro.core.pool import SketchPool
from repro.errors import ParameterError, QueryTimeoutError
from repro.serve import SketchEngine
from repro.table.store import write_table
from repro.table.tiles import TileSpec


@pytest.fixture()
def data():
    return np.random.default_rng(5).normal(size=(64, 64))


@pytest.fixture()
def engine(data):
    engine = SketchEngine(p=1.0, k=16, seed=9)
    engine.register_array("t", data)
    return engine


class TestRegistration:
    def test_register_array(self, engine):
        assert "t" in engine
        assert engine.tables()["t"]["shape"] == [64, 64]

    def test_duplicate_name_rejected(self, engine, data):
        with pytest.raises(ParameterError, match="already registered"):
            engine.register_array("t", data)

    def test_bad_name_rejected(self, engine, data):
        with pytest.raises(ParameterError):
            engine.register_array("", data)

    def test_register_store_file(self, tmp_path, data):
        path = tmp_path / "t.tbl"
        write_table(path, data, chunk_shape=(16, 16))
        engine = SketchEngine(p=1.0, k=8)
        engine.register_store("flat", path)
        np.testing.assert_array_equal(engine.pool("flat").data, data)

    def test_register_stitched_shards(self, tmp_path, data):
        left, right = tmp_path / "a.tbl", tmp_path / "b.tbl"
        write_table(left, data[:, :32], chunk_shape=(16, 16))
        write_table(right, data[:, 32:], chunk_shape=(16, 16))
        engine = SketchEngine(p=1.0, k=8)
        engine.register_store("stitched", [left, right])
        np.testing.assert_array_equal(engine.pool("stitched").data, data)

    def test_register_pool_archive_memory_maps(self, tmp_path, data):
        pool = SketchPool(data, SketchGenerator(p=1.0, k=16, seed=9))
        pool.sketch_for(TileSpec(0, 0, 12, 12))  # build the 8x8 maps
        path = tmp_path / "pool.npz"
        save_pool(path, pool)

        engine = SketchEngine()
        engine.register_pool_archive("warm", path)
        loaded = engine.pool("warm")
        assert isinstance(loaded.data, np.memmap) or isinstance(
            loaded.data.base, np.memmap
        )
        assert all(isinstance(m, np.memmap) for m in loaded._maps.values())
        assert engine.tables()["warm"]["memory_mapped"]
        # queries of a preloaded size must not rebuild anything, and the
        # generator parameters come from the archive, not engine defaults
        engine.distance("warm", (0, 0, 12, 12), (16, 16, 12, 12))
        assert loaded.maps_built == 0
        assert loaded.generator.k == 16

    def test_unknown_table_lookup(self, engine):
        with pytest.raises(ParameterError, match="unknown table"):
            engine.pool("missing")


class TestQueries:
    def test_batch_and_single_agree(self, engine):
        batch = engine.query([("t", (0, 0, 8, 8), (16, 16, 8, 8))])
        single = engine.distance("t", (0, 0, 8, 8), (16, 16, 8, 8))
        assert single == batch[0]

    def test_cross_table_batch(self, engine, data):
        engine.register_array("u", data.T.copy())
        results = engine.query([
            ("t", (0, 0, 8, 8), (8, 8, 8, 8)),
            ("u", (0, 0, 8, 8), (8, 8, 8, 8)),
        ])
        assert len(results) == 2
        assert all(r.strategy == "grid" for r in results)

    def test_empty_batch_rejected(self, engine):
        with pytest.raises(ParameterError):
            engine.query([])

    def test_bad_timeout_rejected(self, engine):
        with pytest.raises(ParameterError):
            engine.query([("t", (0, 0, 8, 8), (8, 8, 8, 8))], timeout=0.0)

    def test_tiny_timeout_raises_timeout(self, engine, monkeypatch):
        import repro.serve.planner as planner_mod

        ticks = iter([0.0, 1e9])
        monkeypatch.setattr(
            planner_mod.time, "monotonic", lambda: next(ticks, 2e9)
        )
        with pytest.raises(QueryTimeoutError):
            engine.query([("t", (0, 0, 8, 8), (8, 8, 8, 8))], timeout=0.5)


class TestBudgetAndStats:
    def test_cross_table_lru_eviction(self, data):
        # Budget fits roughly one table's 8x8 maps; querying the second
        # table must evict the first table's maps, not fail.
        probe_engine = SketchEngine(p=1.0, k=16, seed=1)
        probe_engine.register_array("probe", data)
        probe_engine.distance("probe", (0, 0, 8, 8), (8, 8, 8, 8))
        one_map_bytes = probe_engine.pool("probe").nbytes

        engine = SketchEngine(p=1.0, k=16, seed=1, max_bytes=int(one_map_bytes * 1.5))
        engine.register_array("a", data)
        engine.register_array("b", data.T.copy())
        engine.distance("a", (0, 0, 8, 8), (8, 8, 8, 8))
        engine.distance("b", (0, 0, 8, 8), (8, 8, 8, 8))
        assert engine.budget.maps_evicted > 0
        assert engine.budget.used_bytes <= engine.budget.max_bytes
        # the evicted table still answers (transparent rebuild)
        result = engine.distance("a", (0, 0, 8, 8), (8, 8, 8, 8))
        assert np.isfinite(result.distance)

    def test_eviction_does_not_change_answers(self, data):
        unbounded = SketchEngine(p=1.0, k=16, seed=1)
        unbounded.register_array("a", data)
        want = unbounded.distance("a", (0, 0, 8, 8), (24, 24, 8, 8)).distance

        tight = SketchEngine(p=1.0, k=16, seed=1, max_bytes=70_000)
        tight.register_array("a", data)
        for _ in range(3):
            got = tight.distance("a", (0, 0, 8, 8), (24, 24, 8, 8)).distance
            tight.distance("a", (0, 0, 16, 16), (24, 24, 16, 16))  # churn
            assert got == want

    def test_stats_snapshot_shape(self, engine):
        engine.query([
            ("t", (0, 0, 8, 8), (8, 8, 8, 8)),
            ("t", (0, 0, 8, 8), (16, 16, 8, 8)),
        ])
        snap = engine.stats_snapshot()
        assert snap["requests"] == {"query": 1}
        assert snap["queries"] == 2
        assert snap["batch_size"]["count"] == 1
        assert snap["latency_seconds"]["count"] == 1
        assert snap["planner"]["estimator_calls"] == 1
        assert snap["tables"]["t"]["maps_built"] == 1
        assert "pipeline" in snap["tables"]["t"]
        assert snap["budget"]["max_bytes"] is None
        import json

        json.dumps(snap)  # everything must be JSON-serialisable

    def test_failed_query_counts_as_error(self, engine):
        with pytest.raises(ParameterError):
            engine.query([("missing", (0, 0, 8, 8), (8, 8, 8, 8))])
        snap = engine.stats_snapshot()
        assert snap["errors"] == {"query": 1}

    def test_map_hits_accumulate(self, engine):
        engine.distance("t", (0, 0, 8, 8), (8, 8, 8, 8))
        before = engine.pool("t").map_hits
        engine.distance("t", (4, 4, 8, 8), (16, 16, 8, 8))
        assert engine.pool("t").map_hits > before


class TestRegistrationQueryRace:
    def test_queries_stay_correct_while_tables_register(self):
        """Reads on the pool table are lock-free and never torn.

        The historical bug: ``pool()`` / ``tables()`` read ``_pools``
        under no lock while ``register_*`` mutated it, so a query racing
        a registration could see a half-updated view.  Hammer reads
        against a stream of registrations; every answer must match the
        quiet-system baseline and the final table count must be exact.
        """
        import threading

        engine = SketchEngine(p=1.0, k=8, seed=5)
        engine.register_array(
            "t", np.random.default_rng(2).normal(size=(32, 32))
        )
        batch = [("t", (0, 0, 8, 8), (8, 8, 8, 8)),
                 ("t", (1, 1, 8, 8), (16, 16, 8, 8))]
        baseline = [r.distance for r in engine.query(batch)]
        failures: list[BaseException] = []

        def reader():
            try:
                for _ in range(40):
                    assert [r.distance for r in engine.query(batch)] == baseline
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        def writer():
            try:
                for i in range(20):
                    engine.register_array(
                        f"extra{i}",
                        np.random.default_rng(i).normal(size=(16, 16)),
                    )
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not failures
        assert len(engine.tables()) == 21
