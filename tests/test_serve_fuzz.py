"""Property-based fuzzing of the wire protocol and planner routing parity.

Two families (both deterministic under the ``deterministic`` hypothesis
profile registered in ``conftest.py``):

* **Wire fuzzing.**  Arbitrary bytes and structurally malformed JSON
  frames thrown at a *live* server must never crash it: every frame
  gets either a typed error response or a clean disconnect (oversized
  frames), and the server keeps answering well-formed requests
  afterwards.
* **Routing parity.**  Random mixes of rectangle queries — mixed
  shapes, strategies, and tables in one batch — must be bit-identical
  whether executed as one batched request or one query at a time.  This
  is the paper-level guarantee that batching is an *optimisation*, not
  an approximation.
"""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import Client, SketchEngine, SketchServer, wire

VALID_OPS = ("ping", "health", "tables", "stats", "query")


@pytest.fixture(scope="module")
def engine():
    engine = SketchEngine(p=1.0, k=16, seed=2)
    engine.register_array("t", np.random.default_rng(8).normal(size=(64, 96)))
    engine.register_array("u", np.random.default_rng(9).normal(size=(48, 48)))
    return engine


@pytest.fixture(scope="module")
def server(engine):
    with SketchServer(engine) as srv:
        srv.start()
        yield srv


def exchange(server, payload: bytes) -> dict | None:
    """One raw frame out, one parsed response (or None on disconnect).

    Half-closes the write side after sending so frames the server
    deliberately ignores (blank lines) end in EOF instead of a hang.
    """
    with socket.create_connection(server.address, timeout=10.0) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        line = sock.makefile("rb").readline()
    if not line:
        return None
    return json.loads(line)


def assert_typed_error(response: dict) -> None:
    assert response["ok"] is False
    error = response["error"]
    assert isinstance(error["type"], str) and error["type"].endswith("Error")
    assert isinstance(error["message"], str) and error["message"]


class TestWireFuzz:
    @given(payload=st.binary(min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_bytes_never_crash_the_server(self, server, payload):
        payload = payload.replace(b"\n", b" ").replace(b"\r", b" ") + b"\n"
        response = exchange(server, payload)
        if response is not None:
            assert_typed_error(response)
        # Whatever happened, the server still serves.
        assert exchange(server, b'{"op": "ping"}\n')["ok"] is True

    # JSON values that are valid JSON but can never be a valid request:
    # scalars, arrays, and objects whose "op" is not a known operation.
    _json_scalars = st.one_of(
        st.none(), st.booleans(), st.integers(min_value=-10**6, max_value=10**6),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=20),
    )
    _json_values = st.recursive(
        _json_scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=8), children, max_size=4),
        ),
        max_leaves=10,
    )

    @given(value=_json_values)
    @settings(max_examples=30, deadline=None)
    def test_malformed_json_frames_yield_typed_errors(self, server, value):
        if isinstance(value, dict) and value.get("op") in VALID_OPS:
            value["op"] = "definitely-not-an-op"
        payload = json.dumps(value).encode() + b"\n"
        response = exchange(server, payload)
        assert response is not None
        assert_typed_error(response)
        assert response["error"]["type"] == "ProtocolError"

    @given(
        queries=st.lists(
            st.one_of(
                st.none(),
                st.integers(),
                st.text(max_size=10),
                st.lists(st.integers(min_value=-5, max_value=5),
                         min_size=0, max_size=6),
                st.fixed_dictionaries(
                    {},
                    optional={
                        "table": st.sampled_from(["t", "ghost", ""]),
                        "a": st.lists(st.integers(min_value=-4, max_value=200),
                                      min_size=0, max_size=6),
                        "b": st.lists(st.integers(min_value=-4, max_value=200),
                                      min_size=0, max_size=6),
                        "strategy": st.sampled_from(
                            ["auto", "psychic", "grid", ""]),
                        "junk": st.integers(),
                    },
                ),
            ),
            min_size=1, max_size=4,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_fuzzed_query_batches_never_crash(self, server, queries):
        payload = json.dumps({"op": "query", "queries": queries}).encode() + b"\n"
        response = exchange(server, payload)
        assert response is not None
        # Either every query was coincidentally valid (possible: the
        # strategy can draw an in-bounds rectangle pair) or the error is
        # typed; both ways the server survives and stays consistent.
        if not response["ok"]:
            assert_typed_error(response)
        assert exchange(server, b'{"op": "ping"}\n')["ok"] is True

    def test_oversized_frame_is_rejected_then_disconnected(self, engine):
        with SketchServer(engine, max_line_bytes=1024) as small:
            small.start()
            big = b'{"op": "query", "queries": [' + b" " * 2048 + b"]}\n"
            response = exchange(small, big)
            assert response is not None
            assert_typed_error(response)
            assert "exceeds" in response["error"]["message"]

    def test_oversized_binary_frame_is_refused_before_allocation(self, engine):
        """A hostile binary length field is refused from the header.

        The test sends *only* the 16 header bytes — the declared 2 GiB
        payload never follows — yet the typed error frame arrives
        immediately.  A server that read (or allocated) the declared
        payload before validating would block on our open socket
        instead, and the read below would time out.
        """
        with SketchServer(engine, max_line_bytes=1024) as small:
            small.start()
            with socket.create_connection(small.address, timeout=10.0) as sock:
                sock.sendall(bytes([wire.MAGIC, wire.VERSION]))
                reader = sock.makefile("rb")
                assert reader.read(1)[0] == wire.ACK
                sock.sendall(
                    wire.HEADER.pack(wire.KIND_JSON_REQUEST, 0, 0, 2**31, 42)
                )
                frame = wire.read_frame(reader.read)
                assert frame is not None
                kind, rid, payload = frame
                assert kind == wire.KIND_ERROR
                assert rid == 42  # attributed to the refused request
                error = wire.decode_error(payload)
                assert error["type"] == "FrameSizeError"
                assert "exceeds" in error["message"]
                assert reader.read() == b""  # then the connection drops

    def test_empty_and_blank_lines_are_skipped(self, server):
        with socket.create_connection(server.address, timeout=10.0) as sock:
            sock.sendall(b"\n   \n\t\n" + b'{"op": "ping"}\n')
            line = sock.makefile("rb").readline()
        assert json.loads(line)["ok"] is True


# The engine's pools use the default min_exponent=3, so tiles need
# dims >= 8; "disjoint" additionally needs dims divisible by 8.
MIN_DIM = 8


@st.composite
def mixed_query(draw):
    table, shape = draw(st.sampled_from([("t", (64, 96)), ("u", (48, 48))]))
    height = draw(st.integers(min_value=MIN_DIM, max_value=shape[0]))
    width = draw(st.integers(min_value=MIN_DIM, max_value=shape[1]))
    a_row = draw(st.integers(min_value=0, max_value=shape[0] - height))
    a_col = draw(st.integers(min_value=0, max_value=shape[1] - width))
    b_row = draw(st.integers(min_value=0, max_value=shape[0] - height))
    b_col = draw(st.integers(min_value=0, max_value=shape[1] - width))
    options = ["auto", "compound"]
    if height % MIN_DIM == 0 and width % MIN_DIM == 0:
        options.append("disjoint")
    strategy = draw(st.sampled_from(options))
    return (table, (a_row, a_col, height, width),
            (b_row, b_col, height, width), strategy)


class TestRoutingParity:
    @given(queries=st.lists(mixed_query(), min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_batched_equals_per_query_bit_identical(self, engine, queries):
        """Mixed-table, mixed-strategy batches == one-at-a-time answers."""
        batched = engine.query(queries)
        singles = [engine.query([query])[0] for query in queries]
        assert [r.distance for r in batched] == [r.distance for r in singles]
        assert [r.strategy for r in batched] == [r.strategy for r in singles]

    @given(queries=st.lists(mixed_query(), min_size=1, max_size=6))
    @settings(max_examples=10, deadline=None)
    def test_remote_equals_local_bit_identical(self, server, queries):
        """The wire adds serialisation, not noise: remote == in-process."""
        local = server.engine.query(queries)
        with Client(*server.address, timeout=10.0) as client:
            remote = client.query(queries)
        assert [r.distance for r in remote] == [r.distance for r in local]
        assert [r.strategy for r in remote] == [r.strategy for r in local]
