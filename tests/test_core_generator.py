"""Tests for repro.core.generator: reproducible sketching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SketchGenerator
from repro.errors import ParameterError, ShapeError


class TestConstruction:
    def test_bad_p(self):
        with pytest.raises(ParameterError):
            SketchGenerator(p=0.0, k=4)
        with pytest.raises(ParameterError):
            SketchGenerator(p=2.5, k=4)

    def test_bad_k(self):
        with pytest.raises(ParameterError):
            SketchGenerator(p=1.0, k=0)

    def test_repr(self):
        assert "p=1.0" in repr(SketchGenerator(p=1.0, k=8, seed=3))


class TestRandomMatrices:
    def test_deterministic(self):
        g1 = SketchGenerator(p=1.0, k=4, seed=9)
        g2 = SketchGenerator(p=1.0, k=4, seed=9)
        np.testing.assert_array_equal(
            g1.random_matrix(2, (3, 5)), g2.random_matrix(2, (3, 5))
        )

    def test_different_indices_differ(self):
        g = SketchGenerator(p=1.0, k=4, seed=9)
        assert not np.array_equal(g.random_matrix(0, (3, 3)), g.random_matrix(1, (3, 3)))

    def test_different_streams_differ(self):
        g = SketchGenerator(p=1.0, k=4, seed=9)
        assert not np.array_equal(
            g.random_matrix(0, (3, 3), stream=0), g.random_matrix(0, (3, 3), stream=1)
        )

    def test_different_seeds_differ(self):
        a = SketchGenerator(p=1.0, k=4, seed=1).random_matrix(0, (3, 3))
        b = SketchGenerator(p=1.0, k=4, seed=2).random_matrix(0, (3, 3))
        assert not np.array_equal(a, b)

    def test_index_out_of_range(self):
        g = SketchGenerator(p=1.0, k=4)
        with pytest.raises(ParameterError):
            g.random_matrix(4, (2, 2))

    def test_matrices_stacked_and_cached(self):
        g = SketchGenerator(p=1.0, k=3, seed=0)
        first = g.matrices((2, 2))
        assert first.shape == (3, 2, 2)
        count = g.matrices_generated
        again = g.matrices((2, 2))
        assert g.matrices_generated == count  # cache hit
        np.testing.assert_array_equal(first, again)

    def test_cache_invalidated_on_new_shape(self):
        g = SketchGenerator(p=1.0, k=2, seed=0)
        g.matrices((2, 2))
        count = g.matrices_generated
        g.matrices((3, 3))
        assert g.matrices_generated > count

    def test_iter_matrices_matches_random_matrix(self):
        g = SketchGenerator(p=0.5, k=3, seed=5)
        for index, matrix in enumerate(g.iter_matrices((2, 4))):
            np.testing.assert_array_equal(matrix, g.random_matrix(index, (2, 4)))


class TestSketching:
    def test_sketch_values_are_dot_products(self):
        g = SketchGenerator(p=1.0, k=4, seed=7)
        data = np.random.default_rng(0).normal(size=(4, 6))
        s = g.sketch(data)
        for i in range(4):
            expected = float(np.sum(g.random_matrix(i, (4, 6)) * data))
            assert s.values[i] == pytest.approx(expected)

    def test_vector_treated_as_row(self):
        g = SketchGenerator(p=1.0, k=4, seed=7)
        vec = np.arange(5.0)
        s_vec = g.sketch(vec)
        s_mat = g.sketch(vec[np.newaxis, :])
        np.testing.assert_array_equal(s_vec.values, s_mat.values)
        assert s_vec.key == s_mat.key

    def test_linearity(self):
        g = SketchGenerator(p=0.8, k=8, seed=3)
        rng = np.random.default_rng(1)
        x, y = rng.normal(size=(3, 3)), rng.normal(size=(3, 3))
        combined = g.sketch(2.0 * x - y)
        np.testing.assert_allclose(
            combined.values,
            (2.0 * g.sketch(x) - g.sketch(y)).values,
            atol=1e-9,
        )

    def test_sketch_key_distinguishes_shapes(self):
        g = SketchGenerator(p=1.0, k=2, seed=0)
        a = g.sketch(np.ones((2, 3)))
        b = g.sketch(np.ones((3, 2)))
        assert a.key != b.key

    def test_empty_rejected(self):
        g = SketchGenerator(p=1.0, k=2)
        with pytest.raises(ShapeError):
            g.sketch(np.zeros((0, 3)))

    def test_3d_rejected(self):
        g = SketchGenerator(p=1.0, k=2)
        with pytest.raises(ShapeError):
            g.sketch(np.zeros((2, 2, 2)))

    def test_sketch_many_matches_individual(self):
        g = SketchGenerator(p=1.5, k=6, seed=11)
        rng = np.random.default_rng(2)
        tiles = [rng.normal(size=(4, 4)) for _ in range(5)]
        batch = g.sketch_many(tiles)
        for tile, s in zip(tiles, batch):
            np.testing.assert_allclose(s.values, g.sketch(tile).values, atol=1e-9)
            assert s.key == g.sketch(tile).key

    def test_sketch_many_empty(self):
        assert SketchGenerator(p=1.0, k=2).sketch_many([]) == []

    def test_sketch_many_shape_mismatch(self):
        g = SketchGenerator(p=1.0, k=2)
        with pytest.raises(ShapeError):
            g.sketch_many([np.ones((2, 2)), np.ones((2, 3))])

    def test_sketch_many_vectors(self):
        g = SketchGenerator(p=1.0, k=3, seed=4)
        vecs = [np.arange(4.0), np.ones(4)]
        batch = g.sketch_many(vecs)
        np.testing.assert_allclose(batch[0].values, g.sketch(vecs[0]).values, atol=1e-9)
