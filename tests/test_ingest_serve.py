"""Live ingestion through the serving stack: wire op, chaos, races.

Three layers of guarantees:

* **wire semantics** — the ``update`` op round-trips through a real
  server, duplicate batch ids are skipped, and validation failures come
  back as typed errors without corrupting the table;
* **exactly-once under faults** — a retrying client facing scripted
  disconnects (including the ambiguous drop-*after*-send) applies each
  batch exactly once, because the server-side ingest log dedupes the
  client-stamped batch id;
* **no torn reads** — query threads hammering a table while update
  batches land never observe a half-applied update: every query batch
  is answered against some complete prefix of the update stream.
"""

from __future__ import annotations

import random
import threading

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.ingest import DeltaBatch
from repro.serve import Client, RetryPolicy, SketchEngine, SketchServer
from repro.shard import ShardRouter
from repro.testing import DropAfterSend, DropBeforeSend, FaultPlan, flaky_connect

SHAPE = (64, 64)


def make_engine(**kwargs) -> SketchEngine:
    engine = SketchEngine(p=1.0, k=16, seed=2, **kwargs)
    engine.register_array("t", np.random.default_rng(8).normal(size=SHAPE))
    return engine


@pytest.fixture()
def server():
    with SketchServer(make_engine()) as srv:
        srv.start()
        yield srv


def chaos_client(server, plan, attempts=6, **kwargs) -> Client:
    host, port = server.address
    kwargs.setdefault("retry", RetryPolicy(max_attempts=attempts,
                                           base_delay=0.01, max_delay=0.05))
    kwargs.setdefault("rng", random.Random(1234))
    return Client(host, port, timeout=10.0,
                  connect=flaky_connect(host, port, plan), **kwargs)


class TestUpdateWireOp:
    def test_update_applies_and_queries_see_it(self, server):
        query = ("t", (0, 0, 8, 8), (16, 16, 8, 8))
        with Client(*server.address, timeout=10.0) as client:
            before = client.query([query])[0].distance
            result = client.update("t", [(0, 0, 100.0)])
            assert result["applied"] and not result["duplicate"]
            assert result["cells"] == 1
            after = client.query([query])[0].distance
        assert after != before

    def test_duplicate_batch_id_skipped(self, server):
        with Client(*server.address, timeout=10.0) as client:
            first = client.update("t", [(1, 1, 2.0)], batch_id="b1")
            again = client.update("t", [(1, 1, 2.0)], batch_id="b1")
        assert first["applied"]
        assert again["duplicate"] and not again["applied"]

    def test_auto_batch_ids_are_unique(self, server):
        with Client(*server.address, timeout=10.0) as client:
            results = [client.update("t", [(2, 2, 0.5)]) for _ in range(4)]
        assert all(result["applied"] for result in results)

    def test_update_validation_is_typed(self, server):
        with Client(*server.address, timeout=10.0) as client:
            with pytest.raises(ParameterError):
                client.update("nope", [(0, 0, 1.0)])
            with pytest.raises(ParameterError):
                client.update("t", [(999, 0, 1.0)])  # out of bounds
            with pytest.raises(ParameterError):
                client.update("t", [])
            # The server still works after rejected updates.
            assert client.ping()

    def test_delta_batch_table_must_match(self, server):
        batch = DeltaBatch.from_cells("other", "b", [(0, 0, 1.0)])
        with Client(*server.address, timeout=10.0) as client:
            with pytest.raises(ParameterError):
                client.update("t", batch)

    def test_update_counts_in_stats(self, server):
        with Client(*server.address, timeout=10.0) as client:
            client.update("t", [(0, 1, 1.0)])
            stats = client.stats()
        assert stats["requests"]["update"] == 1
        metrics = stats["metrics"]
        samples = metrics["ingest_updates_total"]["samples"]
        assert samples[0]["value"] == 1


class TestExactlyOnceUnderChaos:
    """Satellite acceptance: duplicated delivery applies exactly once."""

    def test_drop_after_send_applies_once(self, server):
        """The ambiguous fault: the request reached the server, the
        response was lost, and the client must retry.  Without the
        ingest log the delta would land twice."""
        engine = server.engine
        baseline = float(engine.pool("t").data[5, 5])
        plan = FaultPlan([DropAfterSend()])
        with chaos_client(server, plan) as client:
            result = client.update("t", [(5, 5, 7.0)], batch_id="chaos-1")
        # The retry hit the dedupe path...
        assert result["duplicate"]
        assert client.resilience["reconnects_total"] == 1
        # ...and the table moved exactly once.
        assert float(engine.pool("t").data[5, 5]) == baseline + 7.0
        assert engine.ingest_log.batches_applied == 1
        assert engine.ingest_log.duplicates_skipped == 1

    def test_drop_before_send_applies_once(self, server):
        engine = server.engine
        baseline = float(engine.pool("t").data[6, 6])
        plan = FaultPlan([DropBeforeSend()])
        with chaos_client(server, plan) as client:
            result = client.update("t", [(6, 6, -3.0)], batch_id="chaos-2")
        # The first attempt never reached the server: no duplicate.
        assert result["applied"] and not result["duplicate"]
        assert float(engine.pool("t").data[6, 6]) == baseline - 3.0
        assert engine.ingest_log.duplicates_skipped == 0

    def test_burst_of_disconnects_still_exactly_once(self, server):
        engine = server.engine
        baseline = float(engine.pool("t").data[7, 7])
        plan = FaultPlan([DropAfterSend(), DropBeforeSend(), DropAfterSend()])
        with chaos_client(server, plan) as client:
            client.update("t", [(7, 7, 1.5)], batch_id="chaos-3")
        assert float(engine.pool("t").data[7, 7]) == baseline + 1.5


class TestUpdateQueryRaces:
    """Queries racing updates never see a torn (half-applied) batch."""

    N_BATCHES = 20

    def batches(self):
        rng = np.random.default_rng(55)
        out = []
        for index in range(self.N_BATCHES):
            cells = [
                (int(rng.integers(0, SHAPE[0])), int(rng.integers(0, SHAPE[1])),
                 float(rng.normal()) or 1.0)
                for _ in range(4)
            ]
            out.append(DeltaBatch.from_cells("t", f"race-{index}", cells))
        return out

    def test_queries_see_complete_prefixes_only(self):
        # Invalidate mode rebuilds maps bit-identically from the data,
        # so each complete prefix of the update stream yields one exact
        # estimate value.  Precompute the full set on a reference
        # engine; racing readers must only ever observe members of it —
        # a torn (half-applied) map would produce a value outside.
        query = [("t", (0, 0, 8, 8), (8, 8, 8, 8), "disjoint")]
        batches = self.batches()
        reference = make_engine(update_mode="invalidate")
        allowed = {reference.query(query)[0].distance}
        for batch in batches:
            reference.update(batch)
            allowed.add(reference.query(query)[0].distance)

        engine = make_engine(update_mode="invalidate")
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                distance = engine.query(query)[0].distance
                if distance not in allowed:
                    torn.append(distance)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for batch in batches:
                engine.update(
                    DeltaBatch.from_cells(
                        "t", batch.batch_id,
                        list(zip(batch.rows, batch.cols, batch.deltas)),
                    )
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert torn == []
        assert engine.ingest_log.batches_applied == self.N_BATCHES

    def test_concurrent_duplicate_deliveries_apply_once(self):
        engine = make_engine()
        pool = engine.pool("t")
        baseline = float(pool.data[9, 9])
        batch = DeltaBatch.from_cells("t", "dup", [(9, 9, 2.0)])
        outcomes = []
        barrier = threading.Barrier(4, timeout=5.0)

        def deliver():
            barrier.wait()
            outcomes.append(engine.update(batch)["applied"])

        threads = [threading.Thread(target=deliver) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert sorted(outcomes) == [False, False, False, True]
        assert float(pool.data[9, 9]) == baseline + 2.0


class TestRouterUpdate:
    def test_router_routes_update_to_owner_shard(self, server):
        host, port = server.address
        from repro.shard import ShardSpec

        with ShardRouter([ShardSpec("s0", host, port)]) as router:
            result = router.update(
                DeltaBatch.from_cells("t", "routed-1", [(0, 0, 1.0)])
            )
            assert result["applied"]
            # The same id through the router is deduped on the shard.
            again = router.update(
                DeltaBatch.from_cells("t", "routed-1", [(0, 0, 1.0)])
            )
            assert again["duplicate"]

    def test_router_rejects_mode_override(self, server):
        host, port = server.address
        from repro.shard import ShardSpec

        with ShardRouter([ShardSpec("s0", host, port)]) as router:
            with pytest.raises(ParameterError):
                router.update(
                    DeltaBatch.from_cells("t", "routed-2", [(0, 0, 1.0)]),
                    mode="patch",
                )
