"""Unit tests for the live-ingestion building blocks.

Covers the :mod:`repro.ingest` primitives (delta batches, the
exactly-once ingest log, the readers-writer lock), the pool's
incremental map maintenance (`apply_deltas` in all three modes,
including the memory-mapped promotion path), and the streaming sketch's
bounded per-cell randomness cache.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.generator import SketchGenerator
from repro.core.io import load_pool, save_pool
from repro.core.pool import SketchPool
from repro.errors import ParameterError
from repro.ingest import DeltaBatch, IngestLog, RWLock, WindowedTable
from repro.stream import StreamingSketch


class TestDeltaBatch:
    def test_wire_round_trip(self):
        batch = DeltaBatch.from_cells("t", "b1", [(0, 1, 2.5), (3, 4, -1.0)])
        wire = batch.to_wire()
        assert wire == {"table": "t", "batch_id": "b1",
                        "deltas": [[0, 1, 2.5], [3, 4, -1.0]]}
        again = DeltaBatch.from_wire(dict(wire, op="update"))
        assert again == batch
        assert len(again) == 2

    @pytest.mark.parametrize("cells", [
        [(0.5, 1, 2.0)],          # float coordinate
        [(True, 1, 2.0)],         # bool coordinate
        [(-1, 0, 2.0)],           # negative coordinate
        [(0, 0, float("nan"))],   # non-finite delta
        [(0, 0, float("inf"))],
        [(0, 0, "3")],            # non-numeric delta
        [(0, 0)],                 # not a triple
    ])
    def test_bad_cells_rejected(self, cells):
        with pytest.raises(ParameterError):
            DeltaBatch.from_cells("t", "b", cells)

    def test_empty_and_unkeyed_batches_rejected(self):
        with pytest.raises(ParameterError):
            DeltaBatch.from_cells("t", "b", [])
        with pytest.raises(ParameterError):
            DeltaBatch.from_cells("t", "", [(0, 0, 1.0)])
        with pytest.raises(ParameterError):
            DeltaBatch.from_cells("", "b", [(0, 0, 1.0)])

    def test_wire_parse_requires_fields(self):
        with pytest.raises(ParameterError):
            DeltaBatch.from_wire({"op": "update", "table": "t", "deltas": [[0, 0, 1]]})
        with pytest.raises(ParameterError):
            DeltaBatch.from_wire({"op": "update", "table": "t", "batch_id": "b"})


def make_pool(shape=(32, 48), k=12, seed=9, **kwargs) -> SketchPool:
    data = np.random.default_rng(11).normal(size=shape)
    return SketchPool(data, SketchGenerator(p=1.0, k=k, seed=seed), **kwargs)


class TestIngestLog:
    def test_applies_each_batch_id_once(self):
        pool = make_pool()
        log = IngestLog()
        batch = DeltaBatch.from_cells("t", "b1", [(0, 0, 5.0)])
        first = log.apply(pool, batch)
        assert first["applied"] and not first["duplicate"]
        assert first["cells"] == 1
        before = pool.data[0, 0]
        second = log.apply(pool, batch)
        assert second["duplicate"] and not second["applied"]
        assert pool.data[0, 0] == before  # not applied twice
        assert log.batches_applied == 1
        assert log.duplicates_skipped == 1
        assert log.deltas_applied == 1

    def test_distinct_tables_may_reuse_ids(self):
        pool_a, pool_b = make_pool(), make_pool()
        log = IngestLog()
        log.apply(pool_a, DeltaBatch.from_cells("a", "b1", [(0, 0, 1.0)]))
        result = log.apply(pool_b, DeltaBatch.from_cells("b", "b1", [(0, 0, 1.0)]))
        assert result["applied"]

    def test_failed_apply_stays_retryable(self):
        pool = make_pool(shape=(8, 8))
        log = IngestLog()
        bad = DeltaBatch.from_cells("t", "b1", [(100, 100, 1.0)])  # out of range
        with pytest.raises(ParameterError):
            log.apply(pool, bad)
        assert not log.seen("t", "b1")
        good = DeltaBatch.from_cells("t", "b1", [(1, 1, 1.0)])
        assert log.apply(pool, good)["applied"]

    def test_bounded_memory_forgets_oldest(self):
        pool = make_pool()
        log = IngestLog(capacity=2)
        for index in range(3):
            log.apply(pool, DeltaBatch.from_cells("t", f"b{index}", [(0, 0, 0.5)]))
        assert not log.seen("t", "b0")  # evicted
        assert log.seen("t", "b1") and log.seen("t", "b2")

    def test_capacity_validated(self):
        with pytest.raises(ParameterError):
            IngestLog(capacity=0)


class TestRWLock:
    def test_readers_are_concurrent(self):
        lock = RWLock()
        inside = threading.Barrier(2, timeout=5.0)

        def reader():
            with lock.read_locked():
                inside.wait()  # both readers inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        order = []
        writer_in = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()
                time.sleep(0.05)
                order.append("write")

        def reader():
            writer_in.wait(timeout=5.0)
            with lock.read_locked():
                order.append("read")

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        threads[0].start()
        writer_in.wait(timeout=5.0)
        threads[1].start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["write", "read"]


class TestApplyDeltas:
    """Incremental map maintenance against from-scratch ground truth."""

    def deltas(self, shape, n=6, seed=3):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, shape[0], size=n)
        cols = rng.integers(0, shape[1], size=n)
        values = rng.normal(size=n)
        return rows, cols, values

    def test_invalidate_is_bit_identical_to_fresh_pool(self):
        pool = make_pool()
        keys = [(3, 3, 0), (3, 4, 1), (4, 3, 0)]
        for row_exp, col_exp, stream in keys:
            pool._map(row_exp, col_exp, stream)
        rows, cols, values = self.deltas(pool.data.shape)
        summary = pool.apply_deltas(rows, cols, values, mode="invalidate")
        assert summary["maps_invalidated"] == len(keys)
        assert summary["maps_patched"] == 0
        fresh = SketchPool(pool.data.copy(), pool.generator)
        for row_exp, col_exp, stream in keys:
            np.testing.assert_array_equal(
                pool._map(row_exp, col_exp, stream),
                fresh._map(row_exp, col_exp, stream),
            )

    def test_patch_matches_rebuild_within_rounding(self):
        pool = make_pool()
        keys = [(3, 3, 0), (3, 4, 1)]
        for row_exp, col_exp, stream in keys:
            pool._map(row_exp, col_exp, stream)
        rows, cols, values = self.deltas(pool.data.shape)
        summary = pool.apply_deltas(rows, cols, values, mode="patch")
        assert summary["maps_patched"] == len(keys)
        fresh = SketchPool(pool.data.copy(), pool.generator)
        for row_exp, col_exp, stream in keys:
            patched = pool._map(row_exp, col_exp, stream)
            rebuilt = fresh._map(row_exp, col_exp, stream)
            np.testing.assert_allclose(patched, rebuilt, rtol=1e-4, atol=1e-5)

    def test_auto_mode_switches_on_affected_area(self):
        pool = make_pool()
        pool._map(3, 3, 0)
        # One delta touches a bounded anchor rectangle: cheap, patched.
        summary = pool.apply_deltas([0], [0], [1.0], mode="auto")
        assert summary["maps_patched"] == 1
        # A huge per-map budget of zero forces invalidation.
        summary = pool.apply_deltas([0], [0], [1.0], mode="auto", patch_max_cells=0)
        assert summary["maps_invalidated"] == 1

    def test_estimates_stay_sound_after_patch(self):
        pool = make_pool(shape=(64, 64), k=48)
        from repro.core.estimators import estimate_distance
        from repro.core.sketch import Sketch

        def window_estimate():
            maps = pool._map(3, 3, 0)
            key = pool.generator.direct_key((8, 8), 0)
            a = Sketch(np.array(maps[:, 0, 0]), key)
            b = Sketch(np.array(maps[:, 32, 32]), key)
            return estimate_distance(a, b)

        pool._map(3, 3, 0)
        rows, cols, values = self.deltas(pool.data.shape, n=10)
        pool.apply_deltas(rows, cols, values, mode="patch")
        estimate = window_estimate()
        exact = np.abs(
            pool.data[0:8, 0:8] - pool.data[32:40, 32:40]
        ).sum()
        assert estimate == pytest.approx(exact, rel=0.75)

    def test_mmap_archive_promoted_to_ram_copy(self, tmp_path):
        pool = make_pool()
        pool._map(3, 3, 0)
        path = tmp_path / "pool.npz"
        save_pool(path, pool)
        loaded = load_pool(path, mmap_mode="r")
        assert not loaded.data.flags.writeable
        summary = loaded.apply_deltas([0], [0], [2.5], mode="invalidate")
        assert summary["cells"] == 1
        assert loaded.data.flags.writeable
        assert loaded.data[0, 0] == pool.data[0, 0] + 2.5
        # The archive on disk is untouched.
        again = load_pool(path, mmap_mode="r")
        assert again.data[0, 0] == pool.data[0, 0]

    def test_validation_errors(self):
        pool = make_pool(shape=(8, 8))
        with pytest.raises(ParameterError):
            pool.apply_deltas([0], [0], [1.0], mode="bogus")
        with pytest.raises(ParameterError):
            pool.apply_deltas([9], [0], [1.0])
        with pytest.raises(ParameterError):
            pool.apply_deltas([0], [0], [float("nan")])
        with pytest.raises(ParameterError):
            pool.apply_deltas([0, 1], [0], [1.0])
        with pytest.raises(ParameterError):
            pool.apply_deltas([0], [0], [1.0], patch_max_cells=-1)

    def test_empty_update_is_a_no_op(self):
        pool = make_pool()
        assert pool.apply_deltas([], [], []) == {
            "cells": 0, "maps_patched": 0, "maps_invalidated": 0,
        }

    def test_counters_tallied(self):
        pool = make_pool()
        pool._map(3, 3, 0)
        pool.apply_deltas([0], [0], [1.0], mode="patch")
        pool.apply_deltas([0], [0], [1.0], mode="invalidate")
        assert pool.stats.cells_updated == 2
        assert pool.stats.maps_patched == 1
        assert pool.stats.maps_invalidated == 1


class TestCellValueCache:
    """The bounded per-cell randomness LRU (satellite: re-derivation)."""

    def test_cache_parity_with_derivation(self):
        cached = StreamingSketch(1.0, 16, (8, 8), seed=4, stream=2)
        uncached = StreamingSketch(1.0, 16, (8, 8), seed=4, stream=2,
                                   cell_cache_size=0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            row, col = int(rng.integers(0, 8)), int(rng.integers(0, 8))
            delta = float(rng.normal())
            cached.update(row, col, delta)
            uncached.update(row, col, delta)
        np.testing.assert_array_equal(cached.values, uncached.values)
        assert cached.cell_cache_hits > 0
        assert uncached.cell_cache_hits == 0

    def test_cached_values_match_fresh_derivation(self):
        sketch = StreamingSketch(1.0, 8, (4, 4), seed=1)
        first = sketch._cell_values(2, 3)
        second = sketch._cell_values(2, 3)
        assert sketch.cell_cache_hits == 1
        np.testing.assert_array_equal(first, sketch._derive_cell_values(2, 3))
        assert second is first
        assert not first.flags.writeable  # cache entries are immutable

    def test_cache_is_bounded(self):
        sketch = StreamingSketch(1.0, 4, (16, 16), seed=1, cell_cache_size=3)
        for col in range(6):
            sketch.update(0, col, 1.0)
        assert len(sketch._cell_cache) == 3
        assert sketch.cell_cache_misses == 6

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ParameterError):
            StreamingSketch(1.0, 4, (4, 4), cell_cache_size=-1)


class TestWindowedTable:
    def test_slot_geometry_and_validation(self):
        table = WindowedTable("w", height=4, day_width=3, window_days=5)
        assert table.shape == (4, 15)
        assert table.slot(0) == 0
        assert table.slot(6) == 3  # wraps the ring
        with pytest.raises(ParameterError):
            table.slot(-1)
        with pytest.raises(ParameterError):
            WindowedTable("w", height=0, day_width=3)

    def test_arrive_retire_round_trip(self):
        table = WindowedTable("w", height=4, day_width=3, window_days=5, k=8)
        day = np.arange(12, dtype=float).reshape(4, 3)
        batch = table.arrive(0, day)
        assert batch.table == "w"
        assert len(batch) == 11  # one zero cell skipped
        assert table.live_days == (0,)
        negation = table.retire(0)
        assert negation is not None
        assert list(negation.deltas) == [-d for d in batch.deltas]
        assert table.live_days == ()

    def test_slot_collision_and_double_arrival_rejected(self):
        table = WindowedTable("w", height=2, day_width=2, window_days=3, k=4)
        day = np.ones((2, 2))
        table.arrive(0, day)
        with pytest.raises(ParameterError):
            table.arrive(0, day)
        with pytest.raises(ParameterError):
            table.arrive(3, day)  # same ring slot as day 0
        with pytest.raises(ParameterError):
            table.retire(1)  # not live

    def test_all_zero_day_emits_no_batch(self):
        table = WindowedTable("w", height=2, day_width=2, window_days=3, k=4)
        assert table.arrive(0, np.zeros((2, 2))) is None
        assert table.retire(0) is None

    def test_days_to_retire(self):
        table = WindowedTable("w", height=2, day_width=1, window_days=3, k=4)
        for day in range(3):
            table.arrive(day, np.ones((2, 1)) * (day + 1))
        assert table.days_to_retire(3) == (0,)
        assert table.days_to_retire(5) == (0, 1, 2)
