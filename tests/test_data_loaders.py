"""Tests for repro.data.loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import convert_to_store, load_csv, load_npy
from repro.errors import ParameterError, StoreError
from repro.table import TabularData, read_table


class TestLoadCsv:
    def write(self, tmp_path, text, name="t.csv"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_plain_numbers(self, tmp_path):
        path = self.write(tmp_path, "1,2,3\n4,5,6\n")
        table = load_csv(path)
        np.testing.assert_array_equal(table.values, [[1, 2, 3], [4, 5, 6]])
        assert table.row_labels is None
        assert table.col_labels is None

    def test_column_labels(self, tmp_path):
        path = self.write(tmp_path, "t0,t1\n1,2\n3,4\n")
        table = load_csv(path, col_labels=True)
        assert table.col_labels == ["t0", "t1"]
        np.testing.assert_array_equal(table.values, [[1, 2], [3, 4]])

    def test_row_labels(self, tmp_path):
        path = self.write(tmp_path, "s0,1,2\ns1,3,4\n")
        table = load_csv(path, row_labels=True)
        assert table.row_labels == ["s0", "s1"]
        np.testing.assert_array_equal(table.values, [[1, 2], [3, 4]])

    def test_both_labels_with_corner_cell(self, tmp_path):
        path = self.write(tmp_path, "station,t0,t1\ns0,1,2\ns1,3,4\n")
        table = load_csv(path, row_labels=True, col_labels=True)
        assert table.col_labels == ["t0", "t1"]
        assert table.row_labels == ["s0", "s1"]

    def test_tsv(self, tmp_path):
        path = self.write(tmp_path, "1\t2\n3\t4\n", name="t.tsv")
        table = load_csv(path, delimiter="\t")
        np.testing.assert_array_equal(table.values, [[1, 2], [3, 4]])

    def test_blank_lines_skipped(self, tmp_path):
        path = self.write(tmp_path, "1,2\n\n3,4\n\n")
        assert load_csv(path).shape == (2, 2)

    def test_non_numeric_rejected(self, tmp_path):
        path = self.write(tmp_path, "1,2\n3,oops\n")
        with pytest.raises(ParameterError, match=":2:"):
            load_csv(path)

    def test_ragged_rejected(self, tmp_path):
        path = self.write(tmp_path, "1,2\n3,4,5\n")
        with pytest.raises(ParameterError, match="ragged"):
            load_csv(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreError):
            load_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = self.write(tmp_path, "")
        with pytest.raises(ParameterError):
            load_csv(path)

    def test_header_only(self, tmp_path):
        path = self.write(tmp_path, "a,b\n")
        with pytest.raises(ParameterError):
            load_csv(path, col_labels=True)


class TestLoadNpy:
    def test_round_trip(self, tmp_path):
        array = np.random.default_rng(0).normal(size=(5, 7))
        path = tmp_path / "t.npy"
        np.save(path, array)
        table = load_npy(path)
        np.testing.assert_array_equal(table.values, array)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreError):
            load_npy(tmp_path / "nope.npy")


class TestConvertToStore:
    def test_round_trip_through_store(self, tmp_path):
        values = np.random.default_rng(1).normal(size=(20, 30))
        table = TabularData(values)
        path = tmp_path / "t.rtbl"
        convert_to_store(table, path, chunk_shape=(8, 8))
        np.testing.assert_array_equal(read_table(path), values)
