"""Executable documentation: README snippets run, examples run.

Two quality gates:

* every ``python`` code block in README.md executes, in order, in one
  shared namespace (so later snippets may build on earlier ones);
* every script in ``examples/`` runs to completion with exit code 0.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def python_blocks(markdown_path: Path) -> list[str]:
    text = markdown_path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeSnippets:
    def test_readme_has_python_blocks(self):
        assert len(python_blocks(README)) >= 3

    def test_all_snippets_execute_in_order(self):
        namespace: dict = {}
        for index, block in enumerate(python_blocks(README)):
            try:
                exec(compile(block, f"README.md#block{index}", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - diagnostic aid
                pytest.fail(f"README python block {index} failed: {exc!r}\n{block}")
        # The clustering snippet's artefacts exist and are sane.
        assert namespace["fast"].n_clusters == namespace["slow"].n_clusters


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in EXAMPLES}
        assert {"quickstart.py", "callvolume_clustering.py", "varying_p.py"} <= names
        assert len(EXAMPLES) >= 5

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_runs(self, path):
        completed = subprocess.run(
            [sys.executable, str(path)],
            capture_output=True,
            text=True,
            timeout=600,
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert completed.stdout.strip()  # every example narrates its findings
