"""Tests for repro.mining.trends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SketchGenerator
from repro.errors import ParameterError, ShapeError
from repro.mining import relaxed_period, representative_trend, sliding_window_sketches


def periodic_series(period=24, n_periods=12, noise=0.1, seed=0):
    rng = np.random.default_rng(seed)
    template = rng.normal(size=period) * 3.0
    series = np.tile(template, n_periods) + rng.normal(size=period * n_periods) * noise
    return series, template


class TestSlidingWindowSketches:
    def test_matches_direct_sketches(self):
        series = np.random.default_rng(1).normal(size=50)
        gen = SketchGenerator(p=1.0, k=16, seed=2)
        matrix = sliding_window_sketches(series, 8, gen)
        assert matrix.shape == (43, 16)
        for i in (0, 7, 42):
            expected = gen.sketch(series[i : i + 8])
            np.testing.assert_allclose(matrix[i], expected.values, atol=1e-8)

    def test_window_one(self):
        series = np.arange(5.0)
        gen = SketchGenerator(p=1.0, k=4, seed=0)
        matrix = sliding_window_sketches(series, 1, gen)
        assert matrix.shape == (5, 4)

    def test_bad_window(self):
        gen = SketchGenerator(p=1.0, k=4, seed=0)
        with pytest.raises(ParameterError):
            sliding_window_sketches(np.arange(5.0), 6, gen)
        with pytest.raises(ParameterError):
            sliding_window_sketches(np.arange(5.0), 0, gen)

    def test_bad_series(self):
        gen = SketchGenerator(p=1.0, k=4, seed=0)
        with pytest.raises(ShapeError):
            sliding_window_sketches(np.zeros((3, 3)), 2, gen)


class TestRepresentativeTrend:
    def test_finds_typical_block(self):
        """11 near-identical blocks plus one wildly different one: the
        representative must not be the anomaly."""
        series, _ = periodic_series(period=24, n_periods=12, noise=0.05, seed=3)
        series[5 * 24 : 6 * 24] += 40.0  # block 5 is anomalous
        best, costs = representative_trend(series, block=24, p=1.0, k=128)
        assert best != 5
        assert costs[5] == max(costs)

    def test_costs_shape(self):
        series, _ = periodic_series(n_periods=6, seed=4)
        _best, costs = representative_trend(series, block=24, k=32)
        assert costs.shape == (6,)
        assert np.all(costs >= 0)

    def test_too_few_blocks(self):
        with pytest.raises(ParameterError):
            representative_trend(np.arange(30.0), block=20)


class TestRelaxedPeriod:
    def test_finds_planted_period(self):
        series, _ = periodic_series(period=24, n_periods=12, noise=0.05, seed=5)
        best, scores = relaxed_period(series, [12, 18, 24, 30], p=1.0, k=128)
        assert best == 24
        assert scores[24] < scores[18]
        assert scores[24] < scores[30]

    def test_multiple_of_period_also_scores_well(self):
        """Consecutive double-period blocks repeat too; the score at 48
        should be comparable to 24, far below a non-multiple."""
        series, _ = periodic_series(period=24, n_periods=12, noise=0.05, seed=6)
        _best, scores = relaxed_period(series, [24, 36, 48], k=128)
        assert scores[48] < scores[36]

    def test_white_noise_has_no_sharp_period(self):
        rng = np.random.default_rng(7)
        series = rng.normal(size=288)
        _best, scores = relaxed_period(series, [12, 24, 48], k=128)
        values = sorted(scores.values())
        assert values[0] > 0.5 * values[-1]  # no deep dip anywhere

    def test_validation(self):
        with pytest.raises(ParameterError):
            relaxed_period(np.arange(100.0), [])
        with pytest.raises(ParameterError):
            relaxed_period(np.arange(100.0), [0])
        with pytest.raises(ParameterError):
            relaxed_period(np.arange(10.0), [8])  # fewer than 2 blocks
