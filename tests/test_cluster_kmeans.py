"""Tests for repro.cluster.kmeans over exact and sketch spaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import KMeans
from repro.core import ExactLpOracle, PrecomputedSketchOracle, SketchGenerator
from repro.errors import ParameterError


def blob_tiles(n_per=8, n_blobs=3, shape=(4, 4), separation=12.0, seed=0):
    """Well-separated groups of random tiles; returns (tiles, truth)."""
    rng = np.random.default_rng(seed)
    tiles, truth = [], []
    for blob in range(n_blobs):
        center = rng.normal(size=shape) * 0.5 + blob * separation
        for _ in range(n_per):
            tiles.append(center + rng.normal(size=shape) * 0.5)
            truth.append(blob)
    order = rng.permutation(len(tiles))
    return [tiles[i] for i in order], np.asarray(truth)[order]


def clusters_match_truth(labels, truth) -> bool:
    """Every predicted cluster must map to exactly one true cluster."""
    mapping = {}
    for predicted, actual in zip(labels, truth):
        if predicted in mapping and mapping[predicted] != actual:
            return False
        mapping[predicted] = actual
    return len(set(mapping.values())) == len(set(truth))


class TestExactKMeans:
    def test_recovers_blobs(self):
        tiles, truth = blob_tiles()
        result = KMeans(k=3, seed=1).fit(ExactLpOracle(tiles, p=2.0))
        assert clusters_match_truth(result.labels, truth)
        assert result.converged

    @pytest.mark.parametrize("p", [0.5, 1.0, 2.0])
    def test_recovers_blobs_all_p(self, p):
        tiles, truth = blob_tiles(seed=2)
        result = KMeans(k=3, seed=3).fit(ExactLpOracle(tiles, p=p))
        assert clusters_match_truth(result.labels, truth)

    def test_spread_positive_and_finite(self):
        tiles, _ = blob_tiles()
        result = KMeans(k=3, seed=1).fit(ExactLpOracle(tiles, p=1.0))
        assert 0 < result.spread < np.inf

    def test_more_clusters_never_increases_spread(self):
        tiles, _ = blob_tiles(n_per=10, seed=4)
        oracle = ExactLpOracle(tiles, p=2.0)
        spread_3 = KMeans(k=3, seed=0).fit(oracle).spread
        spread_10 = KMeans(k=10, seed=0).fit(oracle).spread
        assert spread_10 <= spread_3 * 1.05  # heuristic algorithm: small slack

    def test_k_one(self):
        tiles, _ = blob_tiles()
        result = KMeans(k=1, seed=0).fit(ExactLpOracle(tiles, p=2.0))
        assert result.n_clusters == 1
        assert np.all(result.labels == 0)

    def test_k_equals_n(self):
        tiles, _ = blob_tiles(n_per=2, n_blobs=2)
        result = KMeans(k=4, seed=0).fit(ExactLpOracle(tiles, p=2.0))
        assert sorted(result.labels.tolist()) == [0, 1, 2, 3]

    def test_every_cluster_nonempty(self):
        tiles, _ = blob_tiles(n_per=4, n_blobs=2, separation=0.0, seed=5)
        result = KMeans(k=5, seed=0).fit(ExactLpOracle(tiles, p=2.0))
        assert np.bincount(result.labels, minlength=5).min() >= 1

    def test_k_too_large(self):
        tiles, _ = blob_tiles(n_per=1, n_blobs=2)
        with pytest.raises(ParameterError):
            KMeans(k=3).fit(ExactLpOracle(tiles, p=2.0))

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            KMeans(k=0)
        with pytest.raises(ParameterError):
            KMeans(k=2, max_iter=0)
        with pytest.raises(ParameterError):
            KMeans(k=2, init="farthest")

    def test_deterministic_given_seed(self):
        tiles, _ = blob_tiles(seed=6)
        oracle = ExactLpOracle(tiles, p=1.0)
        a = KMeans(k=3, seed=9).fit(oracle)
        b = KMeans(k=3, seed=9).fit(oracle)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_kmeans_plus_plus_init(self):
        tiles, truth = blob_tiles(seed=7)
        result = KMeans(k=3, seed=1, init="k-means++").fit(ExactLpOracle(tiles, p=2.0))
        assert clusters_match_truth(result.labels, truth)

    def test_n_init_keeps_best_spread(self):
        tiles, _ = blob_tiles(seed=12)
        oracle = ExactLpOracle(tiles, p=2.0)
        multi = KMeans(k=3, seed=0, n_init=8).fit(oracle)
        singles = [KMeans(k=3, seed=s).fit(oracle).spread for s in range(8)]
        assert multi.spread == pytest.approx(min(singles))

    def test_n_init_validation(self):
        with pytest.raises(ParameterError):
            KMeans(k=2, n_init=0)

    def test_n_init_never_hurts(self):
        tiles, _ = blob_tiles(n_per=6, separation=3.0, seed=13)
        oracle = ExactLpOracle(tiles, p=1.0)
        one = KMeans(k=3, seed=0, n_init=1).fit(oracle)
        many = KMeans(k=3, seed=0, n_init=5).fit(oracle)
        assert many.spread <= one.spread + 1e-9

    def test_spread_history_recorded_and_nonincreasing(self):
        tiles, _ = blob_tiles(seed=14)
        result = KMeans(k=3, seed=2).fit(ExactLpOracle(tiles, p=2.0))
        history = result.meta["spread_history"]
        assert len(history) == result.n_iterations
        # Lloyd's algorithm never increases the objective between the
        # assignment snapshots it records (ties aside).
        for before, after in zip(history, history[1:]):
            assert after <= before + 1e-9

    def test_tol_stops_early(self):
        tiles, _ = blob_tiles(n_per=12, separation=0.5, seed=15)
        oracle = ExactLpOracle(tiles, p=2.0)
        strict = KMeans(k=3, seed=0, max_iter=100).fit(oracle)
        loose = KMeans(k=3, seed=0, max_iter=100, tol=0.2).fit(oracle)
        assert loose.n_iterations <= strict.n_iterations
        assert loose.converged

    def test_tol_validation(self):
        with pytest.raises(ParameterError):
            KMeans(k=2, tol=-0.5)


class TestSketchedKMeans:
    @pytest.mark.parametrize("p", [0.5, 1.0, 2.0])
    def test_sketched_recovers_blobs(self, p):
        tiles, truth = blob_tiles(shape=(8, 8), seed=8)
        gen = SketchGenerator(p=p, k=64, seed=5)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        result = KMeans(k=3, seed=1).fit(oracle)
        assert clusters_match_truth(result.labels, truth)

    def test_sketched_matches_exact_on_easy_data(self):
        tiles, truth = blob_tiles(shape=(8, 8), seed=9)
        exact = KMeans(k=3, seed=2).fit(ExactLpOracle(tiles, p=1.0))
        gen = SketchGenerator(p=1.0, k=128, seed=3)
        sketched = KMeans(k=3, seed=2).fit(
            PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        )
        # Same partition up to label names.
        assert clusters_match_truth(sketched.labels, exact.labels)

    def test_sketch_oracle_never_touches_raw_data(self):
        """After sketching, clustering cost is independent of tile size."""
        tiles, _ = blob_tiles(shape=(8, 8), seed=10)
        gen = SketchGenerator(p=1.0, k=32, seed=0)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        KMeans(k=3, seed=0).fit(oracle)
        # 2k elements per comparison, regardless of the 64-cell tiles.
        assert oracle.stats.elements_touched == oracle.stats.comparisons * 64
