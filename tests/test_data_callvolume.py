"""Tests for the synthetic call-volume generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CallVolumeConfig, generate_call_volume
from repro.data.callvolume import INTERVALS_PER_DAY
from repro.errors import ParameterError


def small_config(**overrides):
    defaults = dict(n_stations=64, n_days=1, seed=3)
    defaults.update(overrides)
    return CallVolumeConfig(**defaults)


class TestShapeAndDeterminism:
    def test_shape(self):
        table = generate_call_volume(small_config(n_days=2))
        assert table.shape == (64, 2 * INTERVALS_PER_DAY)

    def test_labels(self):
        table = generate_call_volume(small_config())
        assert table.row_labels[0] == "s00000"
        assert table.col_labels[0].startswith("d0t00:")
        assert len(table.col_labels) == INTERVALS_PER_DAY

    def test_deterministic(self):
        a = generate_call_volume(small_config())
        b = generate_call_volume(small_config())
        np.testing.assert_array_equal(a.values, b.values)

    def test_seed_changes_data(self):
        a = generate_call_volume(small_config(seed=1))
        b = generate_call_volume(small_config(seed=2))
        assert not np.array_equal(a.values, b.values)

    def test_counts_non_negative(self):
        table = generate_call_volume(small_config())
        assert np.all(table.values >= 0)


class TestStructuralFeatures:
    def test_night_is_quiet(self):
        """Volume at 2-5am is far below 10am-4pm volume."""
        table = generate_call_volume(small_config(n_stations=128))
        hours = np.arange(INTERVALS_PER_DAY) / 6.0
        night = table.values[:, (hours >= 2) & (hours < 5)].mean()
        day = table.values[:, (hours >= 10) & (hours < 16)].mean()
        assert day > 10 * night

    def test_metro_stations_busier(self):
        config = small_config(n_stations=200)
        table = generate_call_volume(config)
        station_totals = table.values.sum(axis=1)
        positions = np.arange(200) / 200
        metro_band = np.abs(positions - config.metro_centers[0]) < config.metro_widths[0]
        rural_band = np.abs(positions - 0.32) < 0.03
        assert station_totals[metro_band].mean() > 3 * station_totals[rural_band].mean()

    def test_timezone_gradient_shifts_ramp(self):
        """West-end stations (u ~ 1) wake ~3 wall-clock hours later."""
        config = CallVolumeConfig(
            n_stations=128, seed=5, timezone_span_hours=3.0, lognormal_sigma=0.0
        )
        table = generate_call_volume(config)
        hours = np.arange(INTERVALS_PER_DAY) / 6.0

        def ramp_hour(row):
            series = table.values[row]
            peak = series.max()
            above = np.flatnonzero(series > 0.5 * peak)
            return hours[above[0]]

        east = np.median([ramp_hour(r) for r in range(5)])
        west = np.median([ramp_hour(r) for r in range(123, 128)])
        assert 1.5 < (west - east) < 4.5

    def test_stitching_days(self):
        one = generate_call_volume(small_config(n_days=1))
        three = generate_call_volume(small_config(n_days=3))
        assert three.shape[1] == 3 * one.shape[1]


class TestValidation:
    def test_bad_station_count(self):
        with pytest.raises(ParameterError):
            CallVolumeConfig(n_stations=0)

    def test_mismatched_metro_tuples(self):
        with pytest.raises(ParameterError):
            CallVolumeConfig(metro_centers=(0.5,), metro_widths=(0.1, 0.2))

    def test_bad_base_volume(self):
        with pytest.raises(ParameterError):
            CallVolumeConfig(base_volume=0.0)
