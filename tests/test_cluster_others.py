"""Tests for the classical clustering substrates (k-medoids, CLARANS,
DBSCAN, hierarchical, BIRCH, CURE) and the seeding helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    Birch,
    Clarans,
    Cure,
    KMedoids,
    agglomerative,
    dbscan,
    kmeans_plus_plus_indices,
    pairwise_distance_matrix,
    random_distinct_indices,
)
from repro.core import ExactLpOracle, PrecomputedSketchOracle, SketchGenerator
from repro.errors import ParameterError

from tests.test_cluster_kmeans import blob_tiles, clusters_match_truth


def blob_vectors(n_per=10, n_blobs=3, dim=5, separation=10.0, seed=0):
    rng = np.random.default_rng(seed)
    points, truth = [], []
    for blob in range(n_blobs):
        center = rng.normal(size=dim) + blob * separation
        for _ in range(n_per):
            points.append(center + rng.normal(size=dim) * 0.4)
            truth.append(blob)
    order = rng.permutation(len(points))
    return np.stack(points)[order], np.asarray(truth)[order]


class TestSeeding:
    def test_random_distinct(self):
        rng = np.random.default_rng(0)
        seeds = random_distinct_indices(10, 4, rng)
        assert len(set(seeds.tolist())) == 4
        assert all(0 <= s < 10 for s in seeds)

    def test_random_k_too_large(self):
        with pytest.raises(ParameterError):
            random_distinct_indices(3, 4, np.random.default_rng(0))

    def test_kmeans_plus_plus_distinct(self):
        tiles, _ = blob_tiles()
        oracle = ExactLpOracle(tiles, p=2.0)
        seeds = kmeans_plus_plus_indices(oracle, 3, np.random.default_rng(1))
        assert len(set(seeds.tolist())) == 3

    def test_kmeans_plus_plus_spreads_over_blobs(self):
        tiles, truth = blob_tiles(n_per=10, seed=3)
        oracle = ExactLpOracle(tiles, p=2.0)
        hits = 0
        for seed in range(10):
            seeds = kmeans_plus_plus_indices(oracle, 3, np.random.default_rng(seed))
            if len(set(truth[seeds].tolist())) == 3:
                hits += 1
        assert hits >= 8  # D^2 seeding should almost always hit all blobs

    def test_kmeans_plus_plus_duplicate_points(self):
        tiles = [np.ones((2, 2))] * 4
        oracle = ExactLpOracle(tiles, p=2.0)
        seeds = kmeans_plus_plus_indices(oracle, 3, np.random.default_rng(0))
        assert len(set(seeds.tolist())) == 3


class TestKMedoids:
    def test_recovers_blobs(self):
        tiles, truth = blob_tiles(seed=1)
        result = KMedoids(k=3, seed=0).fit(ExactLpOracle(tiles, p=1.0))
        assert clusters_match_truth(result.labels, truth)
        assert result.converged

    def test_medoids_are_members(self):
        tiles, _ = blob_tiles(seed=2)
        result = KMedoids(k=3, seed=0).fit(ExactLpOracle(tiles, p=1.0))
        for cluster, medoid in enumerate(result.meta["medoids"]):
            assert result.labels[medoid] == cluster

    def test_works_with_sketches(self):
        tiles, truth = blob_tiles(shape=(8, 8), seed=3)
        gen = SketchGenerator(p=1.0, k=64, seed=1)
        oracle = PrecomputedSketchOracle.from_sketches(gen.sketch_many(tiles))
        result = KMedoids(k=3, seed=0).fit(oracle)
        assert clusters_match_truth(result.labels, truth)

    def test_k_too_large(self):
        with pytest.raises(ParameterError):
            KMedoids(k=5).fit(ExactLpOracle([np.ones((2, 2))] * 3, p=1.0))


class TestClarans:
    def test_recovers_blobs(self):
        tiles, truth = blob_tiles(seed=4)
        result = Clarans(k=3, num_local=2, max_neighbor=30, seed=0).fit(
            ExactLpOracle(tiles, p=1.0)
        )
        assert clusters_match_truth(result.labels, truth)

    def test_cost_decreases_vs_random_medoids(self):
        tiles, _ = blob_tiles(seed=5)
        oracle = ExactLpOracle(tiles, p=1.0)
        clarans = Clarans(k=3, num_local=2, max_neighbor=30, seed=0)
        result = clarans.fit(oracle)
        random_cost = clarans._cost(oracle, [0, 1, 2])
        assert result.spread <= random_cost

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            Clarans(k=0)
        with pytest.raises(ParameterError):
            Clarans(k=2, num_local=0)


class TestDbscan:
    def test_recovers_blobs_with_noise_labels(self):
        tiles, truth = blob_tiles(n_per=10, seed=6)
        oracle = ExactLpOracle(tiles, p=2.0)
        # eps chosen well inside the separation, outside the blob radius.
        result = dbscan(oracle, eps=8.0, min_samples=3)
        assert result.n_clusters == 3
        core = result.labels >= 0
        assert clusters_match_truth(result.labels[core], truth[core])

    def test_isolated_point_is_noise(self):
        points = [np.zeros((1, 2)) + i * 0.1 for i in range(5)]
        points.append(np.full((1, 2), 100.0))
        oracle = ExactLpOracle(points, p=2.0)
        result = dbscan(oracle, eps=1.0, min_samples=2)
        assert result.labels[-1] == -1

    def test_all_noise_when_eps_tiny(self):
        tiles, _ = blob_tiles(seed=7)
        result = dbscan(ExactLpOracle(tiles, p=2.0), eps=1e-9, min_samples=2)
        assert result.n_clusters == 0
        assert np.all(result.labels == -1)

    def test_single_cluster_when_eps_huge(self):
        tiles, _ = blob_tiles(seed=8)
        result = dbscan(ExactLpOracle(tiles, p=2.0), eps=1e9, min_samples=2)
        assert result.n_clusters == 1

    def test_bad_parameters(self):
        oracle = ExactLpOracle([np.ones((2, 2))] * 3, p=1.0)
        with pytest.raises(ParameterError):
            dbscan(oracle, eps=0.0, min_samples=2)
        with pytest.raises(ParameterError):
            dbscan(oracle, eps=1.0, min_samples=0)


class TestHierarchical:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
    def test_recovers_blobs(self, linkage):
        tiles, truth = blob_tiles(seed=9)
        result = agglomerative(ExactLpOracle(tiles, p=2.0), 3, linkage=linkage)
        assert result.n_clusters == 3
        assert clusters_match_truth(result.labels, truth)

    def test_ward_merge_heights_on_distance_scale(self):
        tiles, _ = blob_tiles(n_per=3, seed=14)
        oracle = ExactLpOracle(tiles, p=2.0)
        result = agglomerative(oracle, 2, linkage="ward")
        max_pairwise = pairwise_distance_matrix(oracle).max()
        for _i, _j, height in result.meta["merges"]:
            assert 0 <= height
        # Early merges join near-identical blob members: far below the
        # largest pairwise distance.
        assert result.meta["merges"][0][2] < max_pairwise / 3

    def test_ward_resists_single_link_chaining(self):
        """A chain of stepping stones between two blobs fools single
        link but not Ward."""
        rng = np.random.default_rng(15)
        left = [rng.normal(size=(2, 2)) * 0.2 for _ in range(8)]
        right = [rng.normal(size=(2, 2)) * 0.2 + 12.0 for _ in range(8)]
        bridge = [np.full((2, 2), v) for v in np.linspace(2.0, 10.0, 5)]
        tiles = left + right + bridge
        oracle = ExactLpOracle(tiles, p=2.0)
        ward = agglomerative(oracle, 2, linkage="ward")
        # Ward keeps the two dense blobs in different clusters.
        assert ward.labels[0] != ward.labels[8]

    def test_n_clusters_one(self):
        tiles, _ = blob_tiles(n_per=3, seed=10)
        result = agglomerative(ExactLpOracle(tiles, p=2.0), 1)
        assert result.n_clusters == 1

    def test_n_clusters_equals_n(self):
        tiles, _ = blob_tiles(n_per=2, n_blobs=2, seed=11)
        result = agglomerative(ExactLpOracle(tiles, p=2.0), 4)
        assert sorted(result.labels.tolist()) == [0, 1, 2, 3]

    def test_merge_distances_recorded(self):
        tiles, _ = blob_tiles(n_per=3, seed=12)
        result = agglomerative(ExactLpOracle(tiles, p=2.0), 2)
        assert len(result.meta["merges"]) == len(tiles) - 2

    def test_bad_linkage(self):
        with pytest.raises(ParameterError):
            agglomerative(
                ExactLpOracle([np.ones((2, 2))] * 3, p=1.0), 2, linkage="centroid"
            )

    def test_pairwise_matrix_symmetric(self):
        tiles, _ = blob_tiles(n_per=2, seed=13)
        matrix = pairwise_distance_matrix(ExactLpOracle(tiles, p=1.0))
        np.testing.assert_allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)


class TestBirch:
    def test_recovers_blobs(self):
        points, truth = blob_vectors(seed=1)
        result = Birch(n_clusters=3, threshold=2.0).fit(points)
        assert result.n_clusters == 3
        assert clusters_match_truth(result.labels, truth)

    def test_tree_compresses(self):
        points, _ = blob_vectors(n_per=30, seed=2)
        result = Birch(n_clusters=3, threshold=3.0).fit(points)
        assert result.meta["n_subclusters"] < points.shape[0]

    def test_zero_threshold_keeps_singletons(self):
        points, _ = blob_vectors(n_per=4, seed=3)
        result = Birch(n_clusters=3, threshold=0.0).fit(points)
        assert result.meta["n_subclusters"] == points.shape[0]

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            Birch(n_clusters=0, threshold=1.0)
        with pytest.raises(ParameterError):
            Birch(n_clusters=2, threshold=-1.0)
        with pytest.raises(ParameterError):
            Birch(n_clusters=2, threshold=1.0, branching=1)

    def test_rejects_bad_points(self):
        with pytest.raises(ParameterError):
            Birch(n_clusters=2, threshold=1.0).fit(np.zeros(5))


class TestCure:
    def test_recovers_blobs(self):
        points, truth = blob_vectors(n_per=8, seed=4)
        result = Cure(n_clusters=3).fit(points)
        assert clusters_match_truth(result.labels, truth)

    def test_representatives_shrink_toward_centroid(self):
        points, _ = blob_vectors(n_per=8, n_blobs=1, seed=5)
        loose = Cure(n_clusters=1, shrink=0.0).fit(points)
        tight = Cure(n_clusters=1, shrink=1.0).fit(points)
        centroid = points.mean(axis=0)

        def max_rep_distance(result):
            reps = result.meta["representatives"][0]
            return max(np.linalg.norm(r - centroid) for r in reps)

        assert max_rep_distance(tight) < 1e-9
        assert max_rep_distance(loose) > 0.1

    def test_fractional_p(self):
        points, truth = blob_vectors(n_per=6, seed=6)
        result = Cure(n_clusters=3, p=0.5).fit(points)
        assert clusters_match_truth(result.labels, truth)

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            Cure(n_clusters=2, shrink=1.5)
        with pytest.raises(ParameterError):
            Cure(n_clusters=2, n_representatives=0)
        with pytest.raises(ParameterError):
            Cure(n_clusters=2, p=0.0)
