"""Tests for repro.shard.router: scatter/gather parity and fan-in.

The headline property, pinned by hypothesis: a :class:`ShardRouter`
scattering batches over a fleet of live TCP workers returns results
**bit-identical** to a single-process :class:`SketchEngine` holding the
same tables, in submission order, whatever the batch's mix of tables.
The fan-in surfaces (health / tables / stats / trace) are checked
against the same live fleet.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.obs.trace import render_trace
from repro.serve import SketchEngine, SketchServer
from repro.shard import ShardRouter, ShardSpec

TABLES = ("alpha", "beta", "gamma", "delta")
SIDE = 64

# Pin three of the four tables to distinct shards so mixed batches are
# guaranteed to exercise the multi-shard scatter path; "delta" keeps
# following the hash ring.
OVERRIDES = {"alpha": "s0", "beta": "s1", "gamma": "s2"}


def make_engine() -> SketchEngine:
    engine = SketchEngine(p=1.0, k=16, seed=2)
    for i, name in enumerate(TABLES):
        engine.register_array(
            name, np.random.default_rng(100 + i).normal(size=(SIDE, SIDE))
        )
    return engine


@pytest.fixture(scope="module")
def fleet():
    """Three live single-process workers, every table on every worker."""
    servers = [SketchServer(make_engine()) for _ in range(3)]
    try:
        for server in servers:
            server.start()
        yield [
            ShardSpec(f"s{i}", *server.address)
            for i, server in enumerate(servers)
        ]
    finally:
        for server in servers:
            server.stop()


@pytest.fixture(scope="module")
def reference():
    """The single-process engine every routed answer must reproduce."""
    return make_engine()


@pytest.fixture(scope="module")
def router(fleet):
    with ShardRouter(fleet, overrides=OVERRIDES, rng=random.Random(7)) as r:
        yield r


def answers(source, queries):
    return [(r.distance, r.strategy) for r in source.query(queries)]


def counter_value(registry, name, **labels):
    total = 0.0
    for metric_name, _, _, children in registry.collect():
        if metric_name != name:
            continue
        for got, child in children:
            if all(got.get(k) == v for k, v in labels.items()):
                total += child.value
    return total


@st.composite
def query_batches(draw):
    """Batches of valid rectangle queries over the fixture tables.

    Tile sides stay >= 8 (the engines' pooled minimum is 2^3) and both
    rectangles share a shape, as the distance estimator requires.
    """
    n = draw(st.integers(min_value=1, max_value=8))
    batch = []
    for _ in range(n):
        table = draw(st.sampled_from(TABLES))
        height = draw(st.sampled_from([8, 12, 16, 32]))
        width = draw(st.sampled_from([8, 12, 16, 32]))
        a_row = draw(st.integers(0, SIDE - height))
        a_col = draw(st.integers(0, SIDE - width))
        b_row = draw(st.integers(0, SIDE - height))
        b_col = draw(st.integers(0, SIDE - width))
        batch.append(
            (table, (a_row, a_col, height, width), (b_row, b_col, height, width))
        )
    return batch


class TestParity:
    """Routed answers are bit-identical to the single-process engine."""

    @settings(max_examples=25)
    @given(batch=query_batches())
    def test_scatter_gather_matches_single_engine(self, router, reference, batch):
        assert answers(router, batch) == answers(reference, batch)

    def test_submission_order_survives_a_multi_shard_batch(self, router, reference):
        # Interleave tables pinned to different shards so the gather
        # has to reassemble out-of-shard-order sub-results.
        batch = [
            (TABLES[i % len(TABLES)], (i % 8, 0, 8, 8), (16, i % 8, 8, 8))
            for i in range(12)
        ]
        assert answers(router, batch) == answers(reference, batch)

    def test_single_shard_batch_takes_the_inline_path(self, router, reference):
        batch = [("alpha", (0, 0, 8, 8), (16, 16, 8, 8)),
                 ("alpha", (1, 1, 12, 12), (32, 32, 12, 12))]
        assert answers(router, batch) == answers(reference, batch)

    def test_distance_convenience_wrapper(self, router, reference):
        routed = router.distance("beta", (0, 0, 8, 8), (8, 8, 8, 8))
        local = reference.distance("beta", (0, 0, 8, 8), (8, 8, 8, 8))
        assert (routed.distance, routed.strategy) == (local.distance, local.strategy)

    def test_explicit_strategy_is_forwarded(self, router, reference):
        batch = [("gamma", (0, 0, 16, 16), (32, 16, 16, 16), "disjoint")]
        assert answers(router, batch) == answers(reference, batch)
        assert router.query(batch)[0].strategy == "disjoint"


class TestRouting:
    def test_overrides_pin_tables(self, router):
        assert router.owner_of("alpha") == "s0"
        assert router.owner_of("beta") == "s1"
        assert router.owner_of("gamma") == "s2"
        assert router.owner_of("delta") in {"s0", "s1", "s2"}

    def test_engine_errors_pass_through_typed(self, router):
        with pytest.raises(ParameterError, match="unknown table"):
            router.query([("ghost", (0, 0, 8, 8), (8, 8, 8, 8))])

    def test_empty_batch_rejected(self, router):
        with pytest.raises(ParameterError, match="empty"):
            router.query([])

    def test_non_positive_timeout_rejected(self, router):
        with pytest.raises(ParameterError, match="timeout"):
            router.query([("alpha", (0, 0, 8, 8), (8, 8, 8, 8))], timeout=0)

    def test_contains(self, router):
        assert "alpha" in router
        assert "ghost" not in router


class TestSpecParsing:
    def test_plain_address(self):
        spec = ShardSpec.parse("10.0.0.5:7337", index=3)
        assert (spec.name, spec.host, spec.port) == ("s3", "10.0.0.5", 7337)

    def test_named_address(self):
        spec = ShardSpec.parse("edge=10.0.0.1:9000")
        assert (spec.name, spec.host, spec.port) == ("edge", "10.0.0.1", 9000)

    def test_bare_port_defaults_host(self):
        assert ShardSpec.parse(":7337").host == "127.0.0.1"

    def test_garbage_rejected(self):
        with pytest.raises(ParameterError, match="host:port"):
            ShardSpec.parse("not an address")

    def test_address_property(self):
        assert ShardSpec("a", "127.0.0.1", 7337).address == "127.0.0.1:7337"


class TestFanIn:
    def test_health_aggregates_the_fleet(self, router):
        health = router.health()
        assert health["status"] == "ok"
        assert health["shards_total"] == 3
        assert health["shards_healthy"] == 3
        assert health["tables"] == len(TABLES)
        assert set(health["shards"]) == {"s0", "s1", "s2"}
        assert all(info["status"] == "ok" for info in health["shards"].values())

    def test_tables_annotated_with_owner(self, router):
        tables = router.tables()
        assert set(tables) == set(TABLES)
        for name, meta in tables.items():
            assert meta["shard"] == router.owner_of(name)
            assert meta["shape"] == [SIDE, SIDE]

    def test_stats_snapshot_rolls_up_the_fleet(self, router):
        router.query([(name, (0, 0, 8, 8), (8, 8, 8, 8)) for name in TABLES])
        snapshot = router.stats_snapshot()
        # Engine-shaped top level describing the router's own traffic...
        assert snapshot["requests"]["query"] >= 1
        assert snapshot["queries"] >= len(TABLES)
        # ...plus the fleet: placement, per-shard ledgers, the roll-up.
        assert snapshot["shard_map"]["overrides"] == OVERRIDES
        assert set(snapshot["shards"]) == {"s0", "s1", "s2"}
        aggregate = snapshot["aggregate"]
        assert aggregate["shards"] == 3
        assert aggregate["queries"] >= len(TABLES)
        assert set(aggregate["latency_p99_by_shard"]) <= {"s0", "s1", "s2"}
        assert "metrics" in snapshot

    def test_per_shard_traffic_counters(self, router):
        before = {
            name: counter_value(router.registry, "shard_requests_total", shard=name)
            for name in ("s0", "s1", "s2")
        }
        router.query([("alpha", (0, 0, 8, 8), (8, 8, 8, 8)),
                      ("beta", (0, 0, 8, 8), (8, 8, 8, 8))])
        after = {
            name: counter_value(router.registry, "shard_requests_total", shard=name)
            for name in ("s0", "s1", "s2")
        }
        assert after["s0"] == before["s0"] + 1
        assert after["s1"] == before["s1"] + 1
        assert after["s2"] == before["s2"]


class TestTraceFanIn:
    def test_one_batch_renders_one_cross_process_tree(self, router):
        trace_id = "feedbeef0000cafe"
        with router.tracer.trace(trace_id):
            router.query([("alpha", (0, 0, 8, 8), (8, 8, 8, 8)),
                          ("beta", (0, 0, 8, 8), (8, 8, 8, 8))])
        spans = router.tracer.spans_for_trace(trace_id)
        names = {span["name"] for span in spans}
        # The router's own spans and the workers' spans, one timeline.
        assert {"router.scatter", "router.shard", "client.request",
                "server.request"} <= names
        shards_seen = {span["attrs"]["shard"] for span in spans
                       if "shard" in span.get("attrs", {})}
        assert {"s0", "s1"} <= shards_seen
        rendered = render_trace({"router": spans}, trace_id)
        lines = rendered.splitlines()
        # Exactly one root — the scatter — and everything nests under it.
        assert lines[1].lstrip().startswith("- router.scatter")
        roots = [line for line in lines[1:] if line.startswith("  - ")]
        assert roots == [lines[1]]

    def test_adopted_trace_id_is_reused(self, router):
        with router.tracer.trace("0dd0000000000001"):
            router.query([("alpha", (0, 0, 8, 8), (8, 8, 8, 8))])
        spans = router.tracer.spans_for_trace("0dd0000000000001")
        assert spans  # the ambient id, not a freshly minted one
        assert all(span["trace_id"] == "0dd0000000000001" for span in spans)


class TestLifecycle:
    def test_close_is_idempotent_and_blocks_new_work(self, fleet):
        router = ShardRouter(fleet, rng=random.Random(9))
        assert router.query([("alpha", (0, 0, 8, 8), (8, 8, 8, 8))])
        router.close()
        router.close()
        from repro.errors import ShardUnavailableError
        with pytest.raises(ShardUnavailableError, match="closed"):
            router.query([("alpha", (0, 0, 8, 8), (8, 8, 8, 8))])

    def test_pooled_clients_are_reused(self, router):
        for _ in range(3):
            router.query([("alpha", (0, 0, 8, 8), (8, 8, 8, 8))])
        # Serial single-shard batches reuse one pooled connection.
        assert len(router._idle["s0"]) == 1
