"""Tests for the JSON-lines TCP server and its stdlib client."""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import ParameterError, ProtocolError, ServerOverloadedError
from repro.serve import Client, RetryPolicy, SketchEngine, SketchServer


@pytest.fixture(scope="module")
def server():
    engine = SketchEngine(p=1.0, k=16, seed=2)
    engine.register_array("t", np.random.default_rng(8).normal(size=(64, 64)))
    with SketchServer(engine) as srv:
        srv.start()
        yield srv


@pytest.fixture()
def client(server):
    with Client(*server.address, timeout=10.0) as cli:
        yield cli


def _raw_roundtrip(server, payload: bytes) -> dict:
    """Send raw bytes (one line) and decode the one-line response."""
    with socket.create_connection(server.address, timeout=10.0) as sock:
        sock.sendall(payload)
        handle = sock.makefile("rb")
        return json.loads(handle.readline())


class TestProtocol:
    def test_ping(self, client):
        assert client.ping() is True

    def test_tables(self, client):
        tables = client.tables()
        assert tables["t"]["shape"] == [64, 64]
        assert tables["t"]["k"] == 16

    def test_query_round_trip_matches_engine(self, server, client):
        queries = [
            ("t", (0, 0, 8, 8), (16, 16, 8, 8)),
            ("t", (1, 1, 12, 12), (32, 32, 12, 12)),
            ("t", (0, 0, 16, 16), (32, 16, 16, 16), "disjoint"),
        ]
        remote = client.query(queries)
        local = server.engine.query(queries)
        assert [r.distance for r in remote] == [r.distance for r in local]
        assert [r.strategy for r in remote] == [r.strategy for r in local]

    def test_stats_op(self, client):
        client.query([("t", (0, 0, 8, 8), (8, 8, 8, 8))])
        stats = client.stats()
        assert stats["queries"] >= 1
        assert stats["requests"]["query"] >= 1
        assert "planner" in stats and "tables" in stats and "budget" in stats

    def test_pipelined_requests_on_one_connection(self, client):
        for _ in range(5):
            assert client.ping()
        assert client.distance("t", (0, 0, 8, 8), (8, 8, 8, 8)).strategy == "grid"


class TestErrorMapping:
    def test_engine_error_revives_with_type(self, client):
        with pytest.raises(ParameterError, match="unknown table"):
            client.query([("ghost", (0, 0, 8, 8), (8, 8, 8, 8))])

    def test_connection_survives_an_error(self, client):
        with pytest.raises(ParameterError):
            client.query([("ghost", (0, 0, 8, 8), (8, 8, 8, 8))])
        assert client.ping()  # same connection still usable

    def test_invalid_json_line(self, server):
        response = _raw_roundtrip(server, b"this is not json\n")
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"

    def test_unknown_op(self, server):
        response = _raw_roundtrip(server, b'{"op": "frobnicate"}\n')
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"
        assert "frobnicate" in response["error"]["message"]

    def test_non_object_request(self, server):
        response = _raw_roundtrip(server, b"[1, 2, 3]\n")
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"

    def test_query_without_queries(self, server):
        response = _raw_roundtrip(server, b'{"op": "query"}\n')
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"

    def test_closed_client_raises(self, server):
        cli = Client(*server.address)
        cli.close()
        with pytest.raises(Exception):
            cli.ping()


class TestConcurrency:
    def test_many_clients_in_parallel(self, server):
        queries = [("t", (0, 0, 8, 8), (16, 16, 8, 8)),
                   ("t", (2, 2, 12, 12), (24, 24, 12, 12))]
        expected = [r.distance for r in server.engine.query(queries)]
        failures: list[BaseException] = []

        def worker():
            try:
                with Client(*server.address, timeout=15.0) as cli:
                    for _ in range(5):
                        got = [r.distance for r in cli.query(queries)]
                        assert got == expected
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not failures


class TestAdmissionControl:
    def test_thundering_herd_never_exceeds_max_inflight(self):
        """Admission is one atomic check-and-reserve under the lock.

        The historical race: ``max_inflight`` was checked before the
        in-flight count was incremented, so a herd of simultaneous
        queries could all pass the check and overrun the cap.  Gate the
        engine so admitted queries *hold* their slots, stampede the
        server, and watch the bound."""
        engine = SketchEngine(p=1.0, k=8, seed=3)
        engine.register_array("t", np.random.default_rng(1).normal(size=(32, 32)))
        release = threading.Event()
        original = engine.query

        def gated_query(queries, timeout=None):
            release.wait(timeout=10.0)
            return original(queries, timeout=timeout)

        engine.query = gated_query
        max_inflight, herd = 2, 8
        with SketchServer(engine, max_inflight=max_inflight) as server:
            server.start()
            start_gate = threading.Barrier(herd)
            outcomes: list[str] = []
            lock = threading.Lock()

            def rush():
                with Client(*server.address, timeout=10.0,
                            retry=RetryPolicy.none()) as client:
                    start_gate.wait()  # everyone sends at once
                    try:
                        client.query([("t", (0, 0, 8, 8), (8, 8, 8, 8))])
                        outcome = "ok"
                    except ServerOverloadedError:
                        outcome = "shed"
                    with lock:
                        outcomes.append(outcome)

            threads = [threading.Thread(target=rush) for _ in range(herd)]
            for thread in threads:
                thread.start()
            # Sheds bounce immediately; admitted queries block on the
            # gate holding their slots.  The cap must hold throughout.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                assert server.inflight_queries <= max_inflight
                with lock:
                    shed_count = outcomes.count("shed")
                if (shed_count == herd - max_inflight
                        and server.inflight_queries == max_inflight):
                    break
                time.sleep(0.005)
            assert server.inflight_queries == max_inflight
            release.set()
            for thread in threads:
                thread.join(timeout=10.0)
            assert sorted(outcomes) == (
                ["ok"] * max_inflight + ["shed"] * (herd - max_inflight)
            )

    def test_runtime_cap_mutation_reaches_admission(self):
        """``server.max_inflight = n`` on a live server must take effect.

        The caps live on the :class:`AdmissionController`; the server
        exposes them as delegating properties, so shrinking the window
        at runtime (the chaos drill does exactly this) governs the very
        next admission decision instead of mutating a dead attribute.
        """
        engine = SketchEngine(p=1.0, k=8, seed=3)
        engine.register_array("t", np.random.default_rng(1).normal(size=(32, 32)))
        release = threading.Event()
        original = engine.query

        def gated_query(queries, timeout=None):
            release.wait(timeout=10.0)
            return original(queries, timeout=timeout)

        engine.query = gated_query
        with SketchServer(engine) as server:  # no cap at construction
            server.start()
            hog = Client(*server.address, timeout=10.0)
            done: list = []
            thread = threading.Thread(
                target=lambda: done.append(
                    hog.query([("t", (0, 0, 8, 8), (8, 8, 8, 8))])),
                daemon=True)
            thread.start()
            deadline = time.monotonic() + 5.0
            while server.inflight_queries == 0:
                assert time.monotonic() < deadline, "hog never occupied a slot"
                time.sleep(0.005)
            server.max_inflight = 1  # shrink the window on the live server
            assert server.max_inflight == 1
            assert server.admission_controller.max_inflight == 1
            with Client(*server.address, timeout=10.0,
                        retry=RetryPolicy.none()) as impatient:
                with pytest.raises(ServerOverloadedError):
                    impatient.query([("t", (0, 0, 8, 8), (8, 8, 8, 8))])
                server.max_batch_queries = 1
                with pytest.raises(ServerOverloadedError):
                    impatient.query([("t", (0, 0, 8, 8), (8, 8, 8, 8))] * 2)
                assert impatient.ping()  # cheap ops never shed
            release.set()
            thread.join(timeout=10.0)
            hog.close()
            assert done and len(done[0]) == 1


class TestLifecycle:
    def test_stop_is_idempotent_and_frees_port(self):
        engine = SketchEngine(k=4)
        engine.register_array("x", np.ones((16, 16)))
        server = SketchServer(engine)
        server.start()
        host, port = server.address
        server.stop()
        server.stop()  # idempotent
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)
