"""The paper's 18-day rolling-window drill, live against a sharded tier.

The flagship workload: an AT&T-style call-volume table served over a
rolling 18-day window.  Day turnover is a pair of delta batches (retire
the oldest day, admit the newest) pushed through the ``update`` wire op
while queries keep being answered.  The drill asserts the three
acceptance properties end to end:

* queries are answered throughout the update stream (no downtime, no
  torn maps);
* in ``invalidate`` mode the post-drill answers are **bit-identical**
  to a fresh engine registering the final window from scratch;
* post-update estimates sit inside the quality monitor's guarantee
  band (``theoretical_epsilon`` for the deployed ``k``).
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.generator import SketchGenerator
from repro.core.io import save_pool
from repro.core.pool import SketchPool
from repro.ingest import WindowedTable
from repro.obs.quality import theoretical_epsilon
from repro.serve import SketchEngine
from repro.shard import ShardCluster, ShardRouter, WorkerConfig

P, K, SEED = 1.0, 48, 3
HEIGHT, DAY_WIDTH, WINDOW_DAYS = 32, 8, 18

QUERIES = [
    ("calls", (0, 0, 8, 8), (8, 64, 8, 8), "disjoint"),
    ("calls", (0, 8, 8, 8), (16, 96, 8, 8), "disjoint"),
    ("calls", (8, 0, 16, 16), (16, 112, 16, 16), "disjoint"),
    ("calls", (0, 0, 8, 16), (24, 120, 8, 16)),
]


def day_traffic(day: int) -> np.ndarray:
    """One day's call volumes: seeded, non-negative, a few quiet cells."""
    rng = np.random.default_rng(1000 + day)
    volumes = np.abs(rng.normal(loc=3.0, size=(HEIGHT, DAY_WIDTH)))
    volumes[rng.random(size=volumes.shape) < 0.1] = 0.0
    return volumes


def make_window(through_day: int) -> WindowedTable:
    """A window with days ``0..through_day`` arrived (rolling retires)."""
    window = WindowedTable(
        "calls", height=HEIGHT, day_width=DAY_WIDTH,
        window_days=WINDOW_DAYS, p=P, k=K, seed=SEED,
    )
    for day in range(through_day + 1):
        for retired in window.days_to_retire(day):
            window.retire(retired)
        window.arrive(day, day_traffic(day))
    return window


def exact_distance(table: np.ndarray, query) -> float:
    _, (ra, ca, h, w), (rb, cb, h2, w2) = query[:3]
    return float(np.abs(
        table[ra:ra + h, ca:ca + w] - table[rb:rb + h2, cb:cb + w2]
    ).sum())


class TestShardedRollingDrill:
    def test_live_drill_through_two_workers(self, tmp_path):
        # Seed the archive with the first full window (days 0..17).
        window = make_window(WINDOW_DAYS - 1)
        archive = str(tmp_path / "calls.npz")
        save_pool(archive, SketchPool(
            window.materialized(), SketchGenerator(p=P, k=K, seed=SEED)
        ))

        configs = [
            WorkerConfig(f"s{i}", archives={"calls": archive},
                         p=P, k=K, seed=SEED, update_mode="invalidate")
            for i in range(2)
        ]
        answered = 0
        with ShardCluster(configs, start_timeout=60.0) as cluster:
            with ShardRouter(cluster.specs, rng=random.Random(11)) as router:
                baseline = [r.distance for r in router.query(QUERIES)]
                assert all(math.isfinite(d) for d in baseline)

                # Six day turnovers: retire the oldest, admit the newest,
                # query between every batch.
                for day in range(WINDOW_DAYS, WINDOW_DAYS + 6):
                    for retired in window.days_to_retire(day):
                        batch = window.retire(retired)
                        if batch is not None:
                            assert router.update(batch)["applied"]
                        results = router.query(QUERIES)
                        answered += len(results)
                        assert all(math.isfinite(r.distance) for r in results)
                    batch = window.arrive(day, day_traffic(day))
                    assert router.update(batch)["applied"]
                    # Re-delivery of the same batch id is deduped by
                    # the owning shard.
                    assert router.update(batch)["duplicate"]
                    results = router.query(QUERIES)
                    answered += len(results)
                    assert all(math.isfinite(r.distance) for r in results)

                live = [(r.distance, r.strategy) for r in router.query(QUERIES)]
                stats = router.stats_snapshot()
        assert answered == len(QUERIES) * 12

        # Bit-identity: a fresh engine registering the final window from
        # scratch answers exactly what the live-updated worker answered
        # (invalidate mode rebuilds maps from the updated data).
        final = window.materialized()
        fresh = SketchEngine(p=P, k=K, seed=SEED)
        fresh.register_array("calls", final)
        scratch = [(r.distance, r.strategy) for r in fresh.query(QUERIES)]
        assert live == scratch

        # Quality band: every estimate within the k=48 guarantee band
        # of the exact distance on the final window (seeded and
        # deterministic, so this is a regression check, not a gamble).
        epsilon = theoretical_epsilon(K)
        for query, (distance, _) in zip(QUERIES, live):
            exact = exact_distance(final, query)
            assert exact > 0
            assert abs(distance - exact) <= epsilon * exact

        # The drill flowed through the shard tier: updates were routed
        # to the owning shard and counted.
        assert stats["requests"]["update"] >= 12
        shards = stats.get("shards", {})
        shard_updates = sum(
            (entry.get("requests", {}) or {}).get("update", 0)
            for entry in shards.values()
        )
        assert shard_updates >= 12


class TestInProcessDrillQuality:
    """The same drill against one engine with the monitor shadow-verifying."""

    @pytest.mark.parametrize("mode", ["patch", "invalidate", "auto"])
    def test_quality_monitor_sees_no_violations(self, mode):
        window = make_window(WINDOW_DAYS - 1)
        engine = SketchEngine(
            p=P, k=K, seed=SEED, update_mode=mode,
            quality_sample_rate=1.0, quality_rng=random.Random(7),
        )
        engine.register_array("calls", window.materialized())
        engine.query(QUERIES)
        for day in range(WINDOW_DAYS, WINDOW_DAYS + 3):
            for retired in window.days_to_retire(day):
                batch = window.retire(retired)
                if batch is not None:
                    engine.update(batch)
            engine.update(window.arrive(day, day_traffic(day)))
            engine.query(QUERIES)
        quality = engine.stats_snapshot()["quality"]
        assert quality["checks"] >= len(QUERIES) * 4
        assert quality["violations"] == 0
        # The monitor verified against the *updated* data: the engine's
        # table matches the window's materialised state exactly.
        np.testing.assert_array_equal(
            engine.pool("calls").data, window.materialized()
        )
